"""Metrics registry: counters, gauges, and percentile histograms.

One :class:`MetricsRegistry` serves a whole simulated deployment (it hangs
off the :class:`~repro.net.transport.Network`, which every component
already shares).  Instruments are identified by a name plus a small set of
labels; lookups are get-or-create, so callers can bind an instrument once
in their constructor and pay only an attribute access plus an integer add
on the hot path.

Privacy: every label passes the redaction boundary's
:func:`~repro.obs.redaction.check_label` at creation time — a metric
label can never carry a sample value, a coordinate, or a context label,
and an attempt to create one raises immediately.

Histograms keep a bounded sample buffer (first ``max_samples``
observations, plus exact count/sum/min/max for everything) and report
p50/p95/p99 from it; with the deterministic simulated clock driving every
workload, the early prefix is as representative as any reservoir and the
snapshot stays reproducible.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.redaction import check_label


def _series_key(name: str, labels: dict) -> tuple:
    return (name,) + tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def to_json(self) -> dict:
        return {"Labels": dict(self.labels), "Value": self.value}


class Gauge:
    """A point-in-time value; optionally computed by a callback."""

    __slots__ = ("name", "labels", "_value", "callback")

    def __init__(self, name: str, labels: dict, callback: Optional[Callable] = None):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.callback = callback

    @property
    def value(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def reset(self) -> None:
        self._value = 0.0

    def to_json(self) -> dict:
        return {"Labels": dict(self.labels), "Value": self.value}


class Histogram:
    """Observations with exact count/sum/min/max and sampled percentiles."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_samples", "_max_samples")

    def __init__(self, name: str, labels: dict, max_samples: int = 4096):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)

    @staticmethod
    def _rank(ordered: list, q: float) -> float:
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[int(rank)]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (q in [0, 100]) over the sample buffer."""
        if not self._samples:
            return 0.0
        return self._rank(sorted(self._samples), q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples = []

    def to_json(self) -> dict:
        # One sort serves all three percentiles: snapshots are taken per
        # fleet scrape, and re-sorting a 4096-sample buffer three times
        # per histogram made scrape cost grow with workload age.
        ordered = sorted(self._samples)
        return {
            "Labels": dict(self.labels),
            "Count": self.count,
            "Sum": self.total,
            "Min": self.min if self.count else 0.0,
            "Max": self.max if self.count else 0.0,
            "Mean": self.mean,
            "P50": self._rank(ordered, 50) if ordered else 0.0,
            "P95": self._rank(ordered, 95) if ordered else 0.0,
            "P99": self._rank(ordered, 99) if ordered else 0.0,
        }


class MetricsRegistry:
    """All instruments of one deployment, keyed by (name, labels)."""

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        # Call-signature memo: (kind, name, raw label items) -> instrument.
        # Label validation (check_label) and the sorted series key are paid
        # once per unique call signature instead of on every increment —
        # the hot path is then two dict hits.  Kept separate from the
        # instrument tables so snapshots never see alias entries.
        self._lookup: dict[tuple, object] = {}

    # -- instrument factories (get-or-create) ---------------------------

    @staticmethod
    def _clean_labels(labels: dict) -> dict:
        return {str(k): check_label(str(k), v) for k, v in labels.items()}

    def _memo_get(self, kind: str, name: str, labels: dict):
        # Most instruments carry zero or one label; only multi-label
        # signatures need the canonicalizing sort.
        if len(labels) < 2:
            memo_key = (kind, name) + tuple(labels.items())
        else:
            memo_key = (kind, name) + tuple(sorted(labels.items()))
        try:
            return memo_key, self._lookup.get(memo_key)
        except TypeError:
            # Unhashable label value: let the slow path raise the proper
            # SensorSafeError from check_label.
            return None, None

    def counter(self, name: str, **labels) -> Counter:
        memo_key, instrument = self._memo_get("c", name, labels)
        if instrument is None:
            clean = self._clean_labels(labels)
            key = _series_key(name, clean)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, clean)
            if memo_key is not None:
                self._lookup[memo_key] = instrument
        return instrument

    def gauge(self, name: str, callback: Optional[Callable] = None, **labels) -> Gauge:
        memo_key, instrument = self._memo_get("g", name, labels)
        if instrument is None:
            clean = self._clean_labels(labels)
            key = _series_key(name, clean)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, clean, callback)
            if memo_key is not None:
                self._lookup[memo_key] = instrument
        if callback is not None and instrument.callback is None:
            instrument.callback = callback
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        memo_key, instrument = self._memo_get("h", name, labels)
        if instrument is None:
            clean = self._clean_labels(labels)
            key = _series_key(name, clean)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(name, clean)
            if memo_key is not None:
                self._lookup[memo_key] = instrument
        return instrument

    # -- reads ----------------------------------------------------------

    def counter_value(self, name: str, **labels) -> int:
        """Current value, 0 if the series was never created."""
        memo_key, instrument = self._memo_get("c", name, labels)
        if instrument is None:
            instrument = self._counters.get(_series_key(name, self._clean_labels(labels)))
            if instrument is not None and memo_key is not None:
                self._lookup[memo_key] = instrument
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str, **labels) -> float:
        """Current gauge value (callback honored), 0.0 if never created."""
        memo_key, instrument = self._memo_get("g", name, labels)
        if instrument is None:
            instrument = self._gauges.get(_series_key(name, self._clean_labels(labels)))
            if instrument is not None and memo_key is not None:
                self._lookup[memo_key] = instrument
        return instrument.value if instrument is not None else 0.0

    def sum_counter(self, name: str, **labels) -> int:
        """Sum over every series of ``name`` whose labels contain ``labels``."""
        wanted = self._clean_labels(labels).items()
        return sum(
            c.value
            for c in self._counters.values()
            if c.name == name and wanted <= c.labels.items()
        )

    def series(self, name: str) -> list:
        """Every instrument (any kind) registered under ``name``."""
        out: list = []
        for table in (self._counters, self._gauges, self._histograms):
            out.extend(i for i in table.values() if i.name == name)
        return out

    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument, sorted for diffing."""

        def dump(table: dict) -> dict:
            grouped: dict[str, list] = {}
            for key in sorted(table, key=repr):
                instrument = table[key]
                grouped.setdefault(instrument.name, []).append(instrument.to_json())
            return grouped

        return {
            "Counters": dump(self._counters),
            "Gauges": dump(self._gauges),
            "Histograms": dump(self._histograms),
        }

    def reset(self, name_prefix: str = "") -> None:
        """Zero instruments whose name starts with ``name_prefix``."""
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                if instrument.name.startswith(name_prefix):
                    instrument.reset()
