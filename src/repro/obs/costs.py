"""Per-query cost attribution and the bounded slow-query log.

Every ``/api/query`` and ``/api/aggregate`` accumulates one
:class:`CostRecord` — segments scanned, rules evaluated, decision-cache
and compiled-cache hit/miss, WAL io seconds, bytes released — attached to
the request's trace id.  The numbers come from *counter deltas* around
the handler body (the engine, caches, and WAL already maintain registry
counters), so attribution costs two dict reads per counter instead of new
plumbing through every layer; the simulated network is synchronous, so a
delta can only contain the one in-flight request's work.

Records land in two bounded structures:

* a ring buffer of the most recent records (operator tail), and
* a top-K **slow-query log** ordered by wall microseconds; entries keep
  their trace id and materialize the exemplar trace *tree* lazily at
  export time, so a slow query ships with the spans that explain it.

Exported JSON passes the redaction boundary
(:func:`~repro.obs.redaction.redact_attributes`) like every other
telemetry surface: names, counts, and timings only.
"""

from __future__ import annotations

import bisect
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.obs.redaction import redact_attributes


@dataclass
class CostRecord:
    """The cost of answering one consumer request."""

    trace_id: str
    store: str
    endpoint: str
    consumer: str
    contributor: str
    segments_scanned: int = 0
    segments_released: int = 0
    rules_evaluated: int = 0
    decision_cache_hit: bool = False
    compiled_cache_hit: bool = False
    wal_io_seconds: float = 0.0
    released_bytes: int = 0
    duration_us: float = 0.0
    at_sim_ms: int = 0
    seq: int = 0

    def to_json(self) -> dict:
        """Redacted, JSON-serializable form of the record."""
        return redact_attributes({
            "TraceId": self.trace_id,
            "Store": self.store,
            "Endpoint": self.endpoint,
            "Consumer": self.consumer,
            "Contributor": self.contributor,
            "SegmentsScanned": self.segments_scanned,
            "SegmentsReleased": self.segments_released,
            "RulesEvaluated": self.rules_evaluated,
            "DecisionCacheHit": self.decision_cache_hit,
            "CompiledCacheHit": self.compiled_cache_hit,
            "WalIoSeconds": round(self.wal_io_seconds, 6),
            "ReleasedBytes": self.released_bytes,
            "DurationUs": round(self.duration_us, 3),
            "AtSimMs": self.at_sim_ms,
            "Seq": self.seq,
        })


@dataclass
class _CostToken:
    """Baseline captured at handler entry; closed by ``finish``."""

    store: str
    start_pc: float
    at_sim_ms: int
    trace_id: str
    baseline: tuple = ()


class QueryCostLog:
    """Bounded cost-record store for one deployment's shared hub.

    Lives on :class:`~repro.obs.Observability` as ``obs.costs``.
    ``start``/``finish`` bracket a handler body; both no-op (token
    ``None``) when the hub is disabled so the hot path stays branch-cheap
    with telemetry off.
    """

    def __init__(self, obs, clock=None, *, slow_k: int = 16, ring_capacity: int = 256):
        self._obs = obs
        self._clock = clock
        self.slow_k = int(slow_k)
        self._recent: deque = deque(maxlen=int(ring_capacity))
        #: ascending (duration_us, seq) keys parallel to ``_slow`` entries.
        self._slow_keys: list = []
        self._slow: list = []
        self._seq = 0
        #: per-store bound instruments for the delta snapshot; binding once
        #: turns each baseline into seven attribute reads instead of seven
        #: registry lookups (this brackets every query).
        self._bound: dict = {}

    # -- plumbing --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether the owning hub records telemetry."""
        return bool(self._obs.enabled)

    def _now_ms(self) -> int:
        return int(self._clock.now_ms()) if self._clock is not None else 0

    def _counters(self, store: str) -> tuple:
        """Snapshot of the delta counters, as a positional tuple.

        Order: rule evals, cache hits, cache misses, compiled hits,
        compiles, segments scanned, WAL io seconds.  Get-or-create binding
        is fine here: every one of these instruments is created by the
        layer it meters on first use anyway, so the series existed (or was
        about to) before the first query could bracket it.
        """
        bound = self._bound.get(store)
        if bound is None:
            m = self._obs.metrics
            bound = self._bound[store] = (
                m.counter("rule_evaluations_total"),
                m.counter("cache_hits_total", store=store),
                m.counter("cache_misses_total", store=store),
                m.counter("compiled_cache_hits_total", store=store),
                m.counter("rules_compile_total", store=store),
                m.counter("store_segments_scanned_total", store=store),
                m.gauge("wal_io_seconds", store=store),
            )
        return (bound[0].value, bound[1].value, bound[2].value,
                bound[3].value, bound[4].value, bound[5].value,
                bound[6].value)

    # -- record lifecycle ------------------------------------------------

    def start(self, store: str) -> Optional[_CostToken]:
        """Open a cost bracket for one request handled by ``store``."""
        if not self.enabled:
            return None
        return _CostToken(
            store=store,
            start_pc=time.perf_counter(),
            at_sim_ms=self._now_ms(),
            trace_id=self._obs.tracer.current_trace_id(),
            baseline=self._counters(store),
        )

    def finish(self, token: Optional[_CostToken], *, endpoint: str,
               consumer: str = "", contributor: str = "",
               segments_released: int = 0,
               released_bytes: int = 0) -> Optional[CostRecord]:
        """Close a bracket: build, store, and return the cost record."""
        if token is None:
            return None
        duration_us = (time.perf_counter() - token.start_pc) * 1e6
        now = self._counters(token.store)
        base = token.baseline
        self._seq += 1
        record = CostRecord(
            trace_id=token.trace_id or self._obs.tracer.current_trace_id(),
            store=token.store,
            endpoint=endpoint,
            consumer=consumer,
            contributor=contributor,
            segments_scanned=now[5] - base[5],
            segments_released=int(segments_released),
            rules_evaluated=now[0] - base[0],
            decision_cache_hit=(now[1] > base[1] and now[2] == base[2]),
            compiled_cache_hit=(now[3] > base[3] and now[4] == base[4]),
            wal_io_seconds=max(0.0, now[6] - base[6]),
            released_bytes=int(released_bytes),
            duration_us=duration_us,
            at_sim_ms=token.at_sim_ms,
            seq=self._seq,
        )
        self._record(record)
        span = self._obs.tracer.current_span()
        if span is not None:
            span.set_attributes(
                cost_segments_scanned=record.segments_scanned,
                cost_rules_evaluated=record.rules_evaluated,
                cost_cache_hit=record.decision_cache_hit,
                cost_released_bytes=record.released_bytes,
            )
        return record

    def _record(self, record: CostRecord) -> None:
        self._recent.append(record)
        m = self._obs.metrics
        m.counter("query_cost_records_total", store=record.store).inc()
        m.histogram("query_cost_us", store=record.store).observe(record.duration_us)
        m.histogram("query_released_bytes", store=record.store).observe(record.released_bytes)
        # Top-K by duration: keep the parallel key list sorted ascending so
        # the eviction victim is always index 0.
        key = (record.duration_us, record.seq)
        if len(self._slow) >= self.slow_k:
            if key <= self._slow_keys[0]:
                return
            self._slow_keys.pop(0)
            self._slow.pop(0)
        pos = bisect.bisect(self._slow_keys, key)
        self._slow_keys.insert(pos, key)
        self._slow.insert(pos, record)

    # -- export ----------------------------------------------------------

    def recent(self, limit: int = 50) -> list:
        """The newest ``limit`` cost records, newest last."""
        items = list(self._recent)
        return [r.to_json() for r in items[-limit:]]

    def _trace_tree(self, trace_id: str) -> list:
        if not trace_id:
            return []
        tracer = self._obs.tracer
        return [
            {"Depth": depth, **span.to_json()}
            for depth, span in tracer.trace_tree(trace_id)
        ]

    def slow_queries(self, limit: Optional[int] = None,
                     with_traces: bool = True) -> list:
        """Slowest queries (desc), each with its exemplar trace tree.

        Trees materialize lazily from the tracer's finished-span store; a
        tree comes back empty when the tracer was reset since the record
        was taken (the cost numbers themselves are retained).
        """
        records = list(reversed(self._slow))
        if limit is not None:
            records = records[: int(limit)]
        out = []
        for record in records:
            entry = record.to_json()
            if with_traces:
                entry["TraceTree"] = self._trace_tree(record.trace_id)
            out.append(entry)
        return out

    def to_json(self, *, slow_limit: Optional[int] = None) -> dict:
        """The cost section of the fleet snapshot."""
        return {
            "SlowQueries": self.slow_queries(limit=slow_limit),
            "Recent": self.recent(limit=20),
        }

    def reset(self) -> None:
        """Drop every retained record."""
        self._recent.clear()
        self._slow_keys.clear()
        self._slow.clear()
