"""Observability: metrics, traces, and the telemetry redaction boundary.

The :class:`Observability` hub bundles one
:class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracing.Tracer` for a deployment.  It hangs off the
:class:`~repro.net.transport.Network` (every component already shares the
network), so stores, the broker, phones, and clients all report into the
same registry and the same trace store.

Telemetry is privacy-safe by construction: every span attribute and every
metric label passes the redaction boundary in :mod:`repro.obs.redaction`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.costs import CostRecord, QueryCostLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.redaction import (
    REDACTED,
    check_label,
    redact_attribute,
    redact_attributes,
)
from repro.obs.slo import SloThresholds, SloTracker
from repro.obs.tracing import TRACEPARENT, Span, Tracer


class Observability:
    """Metrics + tracing + privacy SLOs + query costs for one deployment."""

    def __init__(self, clock=None, *, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, enabled=enabled)
        self.slo = SloTracker(self, clock)
        self.costs = QueryCostLog(self, clock)

    def snapshot(self) -> dict:
        """JSON-serializable metrics dump (traces via ``tracer.export_json``)."""
        return self.metrics.snapshot()

    def reset(self) -> None:
        self.metrics.reset()
        self.tracer.reset()
        self.slo.reset()
        self.costs.reset()


def noop_observability() -> Observability:
    """A disabled hub: spans are no-ops, the registry stays empty-ish.

    Handed to components running outside any deployment (bare engines in
    unit tests, the conformance oracle) so instrumentation code never has
    to null-check.
    """
    return Observability(enabled=False)


__all__ = [
    "Observability",
    "noop_observability",
    "CostRecord",
    "QueryCostLog",
    "SloThresholds",
    "SloTracker",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "TRACEPARENT",
    "REDACTED",
    "check_label",
    "redact_attribute",
    "redact_attributes",
]
