"""Human-readable and JSON reports over the observability hub.

``python -m repro obs report`` runs a miniature end-to-end deployment —
phone upload, then a rule-gated consumer query — and prints the metrics
snapshot plus the query's trace tree, ending with the trace id stamped on
the matching audit record.  ``--faults`` breaks the upload path first so
retries, offline buffering, and breaker state transitions show up in the
counters.  ``--metrics-out`` / ``--traces-out`` dump the same data as
JSON for machines (CI archives the metrics snapshot as an artifact).

The renderers are plain functions over the snapshot/tracer shapes, so
benchmarks and the C7 fault smoke reuse them on their own systems.

``python -m repro obs fleet`` (dispatched from here to
:mod:`repro.obs.fleet`) is the cluster-wide sibling: one report over
every host's scraped metrics plus the privacy-SLO and slow-query state.
"""

from __future__ import annotations

import json
import sys

from repro.obs.redaction import redact_attributes


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.1f}"
    return f"{int(value):,}"


def render_metrics(snapshot: dict, *, prefix: str = "") -> str:
    """Text rendering of a :meth:`MetricsRegistry.snapshot` dump.

    ``prefix`` filters instrument names (e.g. ``"net_"``); counters and
    gauges print one line per series, histograms print the percentile
    summary.  Zero-count histograms are skipped — an instrument that was
    bound but never fired is noise, not signal.
    """
    lines: list[str] = []
    for kind in ("Counters", "Gauges"):
        table = snapshot.get(kind, {})
        for name in sorted(table):
            if not name.startswith(prefix):
                continue
            for series in table[name]:
                lines.append(
                    f"  {name}{_fmt_labels(series['Labels'])} = "
                    f"{_fmt_value(series['Value'])}"
                )
    for name in sorted(snapshot.get("Histograms", {})):
        if not name.startswith(prefix):
            continue
        for series in snapshot["Histograms"][name]:
            if not series["Count"]:
                continue
            lines.append(
                f"  {name}{_fmt_labels(series['Labels'])}: "
                f"count={series['Count']} mean={series['Mean']:,.1f} "
                f"p50={series['P50']:,.1f} p95={series['P95']:,.1f} "
                f"p99={series['P99']:,.1f}"
            )
    return "\n".join(lines) if lines else "  (no instruments)"


def render_trace(tracer, trace_id: str) -> str:
    """Indented tree of one trace: name, status, durations, attributes."""
    rows = tracer.trace_tree(trace_id)
    if not rows:
        return f"  (no spans for {trace_id!r})"
    lines = [f"  trace {trace_id}"]
    for depth, span in rows:
        # The render is an export surface: scrub attributes exactly like
        # the JSON dump does (spans store them raw for hot-path speed).
        attrs = ", ".join(
            f"{k}={v}"
            for k, v in sorted(redact_attributes(span.attributes).items())
        )
        flag = "" if span.status == "ok" else " [ERROR]"
        lines.append(
            f"  {'  ' * (depth + 1)}{span.name}{flag} "
            f"({span.duration_us:,.0f}us wall, {span.duration_sim_ms}ms sim)"
            + (f"  {attrs}" if attrs else "")
        )
    return "\n".join(lines)


def run_scenario(*, faults: bool = False, seed: int = 3):
    """A miniature deployment exercising every instrumented layer.

    Returns ``(system, trace_id)`` where ``trace_id`` is the trace of the
    consumer query, read back off the store's audit trail — which is
    itself the satellite property this demo exists to show.
    """
    from repro.core.system import SensorSafeSystem
    from repro.datastore.query import DataQuery
    from repro.net.faults import FaultPlan
    from repro.rules.model import ALLOW, Rule
    from repro.sensors.packets import SensorPacket

    plan = None
    if faults:
        plan = FaultPlan(seed=seed)
        # Flaky upload path: the phone's retry + offline queue and the
        # client's circuit breaker all leave fingerprints in the metrics.
        plan.add_flaky("alice-store", fail_first=6, path="/api/upload_packets")
    system = SensorSafeSystem(seed=seed, fault_plan=plan)
    alice = system.add_contributor("alice")
    alice.add_rule(Rule(consumers=("bob",), sensors=("ECG",), action=ALLOW))
    phone = alice.phone()
    packets = [
        SensorPacket(
            channel_name="ECG",
            start_ms=i * 64 * 4,
            interval_ms=4,
            values=tuple(float(j % 7) for j in range(64)),
        )
        for i in range(48)
    ]
    phone.upload(packets)
    phone.drain_offline(max_rounds=20)

    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    bob.fetch("alice", DataQuery())

    trail = system.stores["alice-store"].audit.trail_of("alice")
    trace_id = trail[-1].trace_id if trail else ""
    return system, trace_id


def main(argv) -> int:
    """``python -m repro obs report [--faults] [--metrics-out F] [--traces-out F]``."""
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv and argv[0] == "fleet":
        from repro.obs.fleet import main as fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "report":
        argv = argv[1:]  # `obs report` and bare `obs` both work

    def _flag_value(flag: str):
        if flag in argv:
            index = argv.index(flag)
            if index + 1 >= len(argv):
                print(f"{flag} needs a path argument", file=sys.stderr)
                return None
            return argv[index + 1]
        return ""

    metrics_out = _flag_value("--metrics-out")
    traces_out = _flag_value("--traces-out")
    if metrics_out is None or traces_out is None:
        return 2
    faults = "--faults" in argv

    system, trace_id = run_scenario(faults=faults)
    obs = system.obs
    snapshot = obs.metrics.snapshot()

    print("Observability report" + (" (with fault injection)" if faults else ""))
    print("====================")
    print("metrics:")
    print(render_metrics(snapshot))
    print()
    print("consumer query trace:")
    print(render_trace(obs.tracer, trace_id))
    trail = system.stores["alice-store"].audit.trail_of("alice")
    print()
    print(f"audit: {len(trail)} record(s); last TraceId={trail[-1].trace_id!r}")

    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"metrics snapshot written to {metrics_out}")
    if traces_out:
        with open(traces_out, "w", encoding="utf-8") as handle:
            json.dump(obs.tracer.export_json(), handle, indent=2, sort_keys=True)
        print(f"traces written to {traces_out}")

    if not trace_id:
        print("FAIL: query produced no trace id on the audit record")
        return 1
    if not any(s.name == "rules.evaluate" for _, s in obs.tracer.trace_tree(trace_id)):
        print("FAIL: query trace is missing the rule-engine span")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
