"""Span tracer with in-process trace-context propagation.

One consumer query becomes one *trace tree*: the client span
(:meth:`~repro.net.client.HttpClient.post`) injects a ``Traceparent``
header, :meth:`~repro.net.transport.Network.request` extracts it and
opens a server span, and the handlers running inside open child spans for
the rule engine and the segment scan.  Because the simulated network is
synchronous, "current span" is a plain stack — the same shape a
contextvar would give an async runtime.

Span attributes pass through the redaction boundary
(:func:`~repro.obs.redaction.redact_attribute`) at every export surface
(:meth:`Span.to_json`, the CLI trace render); no sensor sample value or
raw coordinate can reach a dumped trace.  Setting an attribute is a plain
dict write — redaction runs where data leaves the process, keeping the
request hot path cheap.  Durations are measured twice: wall microseconds
(``perf_counter``, the real compute cost) and simulated milliseconds (the
:class:`~repro.net.faults.SimClock`, which backoff and outages advance).

Ids are deterministic per tracer (a counter, not entropy), so tests and
replayed fault schedules produce byte-identical trace dumps.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.redaction import redact_attributes

#: Header key used to propagate trace context through Network requests.
TRACEPARENT = "Traceparent"


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "status",
        "start_sim_ms",
        "duration_sim_ms",
        "duration_us",
        "_start_pc",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start_sim_ms: int,
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes: dict = {}
        self.status = "ok"
        self.start_sim_ms = start_sim_ms
        self.duration_sim_ms = 0
        self.duration_us = 0.0
        self._start_pc = time.perf_counter()
        self._finished = False

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute (redaction applies at export, not here)."""
        self.attributes[str(key)] = value

    def set_attributes(self, **attrs) -> None:
        self.attributes.update(attrs)  # kwargs keys are already strings

    def set_error(self, message: str) -> None:
        self.status = "error"
        self.set_attribute("error_message", str(message)[:120])

    def to_json(self) -> dict:
        return {
            "TraceId": self.trace_id,
            "SpanId": self.span_id,
            "ParentId": self.parent_id,
            "Name": self.name,
            "Status": self.status,
            "StartSimMs": self.start_sim_ms,
            "DurationSimMs": self.duration_sim_ms,
            "DurationUs": round(self.duration_us, 3),
            # THE redaction boundary for spans: attributes are stored raw
            # and scrubbed here, on the way out, so no write path (not
            # even a direct dict write) can leak past an export.
            "Attributes": redact_attributes(self.attributes),
        }

    # -- context-manager protocol ---------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and self.status == "ok":
            self.set_error(f"{exc_type.__name__}: {exc}")
        self.tracer.end_span(self)
        return False


class Tracer:
    """Creates spans, tracks the active one, stores finished ones."""

    def __init__(self, clock=None, *, max_spans: int = 100_000, enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.finished: list[Span] = []
        self._by_trace: dict[str, list[Span]] = {}
        self._stack: list[Span] = []
        self._next_trace = 0
        self._next_span = 0

    # -- id generation (deterministic) ----------------------------------

    def _new_trace_id(self) -> str:
        self._next_trace += 1
        return f"trace-{self._next_trace:06d}"

    def _new_span_id(self) -> str:
        self._next_span += 1
        return f"span-{self._next_span:06d}"

    def _now_sim_ms(self) -> int:
        return self.clock.now_ms() if self.clock is not None else 0

    # -- span lifecycle -------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        remote_parent: Optional[tuple] = None,
        **attrs,
    ) -> Span:
        """Open a span as child of the active one (or of ``remote_parent``).

        ``remote_parent`` is a ``(trace_id, span_id)`` pair extracted from
        request headers; it wins over the local stack, which is how the
        server side of a request joins the client's trace.
        """
        if not self.enabled:
            return _NOOP_SPAN
        # Inlined id/clock helpers: this runs for every request, WAL
        # append, ship, and rule evaluation in the deployment.
        stack = self._stack
        if remote_parent is not None:
            trace_id, parent_id = remote_parent
        elif stack:
            top = stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            self._next_trace += 1
            trace_id, parent_id = f"trace-{self._next_trace:06d}", None
        self._next_span += 1
        span = Span(
            self, trace_id, f"span-{self._next_span:06d}", parent_id, name,
            self.clock.now_ms() if self.clock is not None else 0,
        )
        if attrs:
            span.attributes.update(attrs)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if span is _NOOP_SPAN or span._finished:
            return
        span._finished = True
        span.duration_us = (time.perf_counter() - span._start_pc) * 1e6
        now_ms = self.clock.now_ms() if self.clock is not None else 0
        span.duration_sim_ms = now_ms - span.start_sim_ms
        # Pop the span; well-nested exits hit the O(1) fast path, error
        # paths that unwind out of order pay the scan.
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            while stack[-1] is not span:
                stack.pop()
            stack.pop()
        if len(self.finished) < self.max_spans:
            self.finished.append(span)
            self._by_trace.setdefault(span.trace_id, []).append(span)
        else:
            self.dropped_spans += 1

    # -- context --------------------------------------------------------

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def current_trace_id(self) -> str:
        """The active trace id, or "" outside any span."""
        return self._stack[-1].trace_id if self._stack else ""

    # -- propagation ----------------------------------------------------

    def inject(self, headers: dict) -> dict:
        """Write the active context into request headers (no-op if idle)."""
        span = self.current_span()
        if span is not None:
            headers[TRACEPARENT] = f"{span.trace_id}/{span.span_id}"
        return headers

    @staticmethod
    def extract(headers: Optional[dict]) -> Optional[tuple]:
        """Read a ``(trace_id, span_id)`` context out of request headers."""
        if not headers:
            return None
        value = headers.get(TRACEPARENT)
        if not value:
            return None
        trace_id, sep, span_id = str(value).partition("/")
        if not sep or not trace_id or not span_id:
            return None
        return (trace_id, span_id)

    # -- export ---------------------------------------------------------

    def traces(self) -> dict:
        """Finished spans grouped by trace id, in finish order.

        The grouping is maintained incrementally as spans finish, so
        per-trace lookups (the slow-query log renders one exemplar tree
        per record) do not rescan the whole finished list.  Callers must
        treat the mapping as read-only.
        """
        return self._by_trace

    def trace_tree(self, trace_id: str) -> list:
        """Depth-first rendering of one trace: [(depth, span), ...]."""
        spans = self.traces().get(trace_id, [])
        children: dict[Optional[str], list] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in spans}
        out: list = []

        def walk(parent_key: Optional[str], depth: int) -> None:
            for span in sorted(children.get(parent_key, []), key=lambda s: s.span_id):
                out.append((depth, span))
                walk(span.span_id, depth + 1)

        walk(None, 0)
        # Spans whose parent never finished (remote parent, drops) are roots.
        for span in spans:
            if span.parent_id is not None and span.parent_id not in known:
                out.append((0, span))
                walk(span.span_id, 1)
        return out

    def export_json(self) -> dict:
        return {
            "DroppedSpans": self.dropped_spans,
            "Traces": {
                trace_id: [span.to_json() for span in spans]
                for trace_id, spans in sorted(self.traces().items())
            },
        }

    def reset(self) -> None:
        self.finished = []
        self._by_trace = {}
        self.dropped_spans = 0


class _NoopSpan(Span):
    """Shared do-nothing span handed out by disabled tracers."""

    def __init__(self):  # noqa: D401 - deliberately skips Span.__init__
        super().__init__(tracer=None, trace_id="", span_id="", parent_id=None,
                         name="noop", start_sim_ms=0)
        self._finished = True

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
