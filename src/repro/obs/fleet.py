"""Fleet observability: cluster-wide metrics aggregation and reporting.

The broker periodically scrapes every registered host's ``/api/metrics``
endpoint and merges the results into a **versioned fleet snapshot**:

* one section per host, carrying only the series that host *owns* (its
  ``store=`` / ``host=`` labels) plus role/epoch/LSN enrichment from
  ``/api/health``;
* a ``Fleet`` section for deployment-wide series that no single host owns
  (rule-engine counters, sync, failover, broker search);
* the privacy-SLO report (:mod:`repro.obs.slo`), the slow-query log
  (:mod:`repro.obs.costs`), and the failover manager's trace-stamped
  promotion/rejoin events.

Hosts that stop answering are **tombstoned, not dropped**: the aggregator
remembers each host's last good section and keeps emitting it flagged
``Tombstoned`` so a demoted-then-killed primary stays accounted for after
failover — fleet totals must not silently shrink when a host dies.

Every label and attribute in the snapshot passes the redaction boundary
again on the way out (defense in depth — the per-host scrape already
checked them at instrument creation): host names are allowed, sample
values, coordinates, and context labels are deny-by-default.

Served at ``GET /api/fleet/metrics`` on the broker and rendered by
``python -m repro obs fleet``.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.exceptions import OverloadedError, SensorSafeError
from repro.net.client import HttpClient
from repro.obs.redaction import redact_attributes

#: Label keys whose value attributes a series to one host.
_OWNER_LABEL_KEYS = ("store", "host")

#: Counter names merged into the snapshot's fleet-wide totals.
_TOTAL_COUNTERS = (
    "net_requests_total",
    "net_bytes_in_total",
    "net_bytes_out_total",
    "store_segments_scanned_total",
    "replication_frames_shipped_total",
    "replication_frames_applied_total",
    "query_cost_records_total",
)


def series_owner(labels: dict) -> Optional[str]:
    """The host a metric series belongs to, or ``None`` if fleet-wide."""
    for key in _OWNER_LABEL_KEYS:
        owner = labels.get(key)
        if owner:
            return str(owner)
    return None


def _sanitize_series(entry: dict) -> dict:
    """Re-redact one series dict scraped off the wire (defense in depth)."""
    clean = dict(entry)
    labels = entry.get("Labels")
    if isinstance(labels, dict):
        clean["Labels"] = redact_attributes(labels)
    return clean


def _filter_metrics(metrics: dict, keep) -> dict:
    """Keep only the series for which ``keep(labels)`` is true, sanitized."""
    out: dict = {}
    for kind in ("Counters", "Gauges", "Histograms"):
        table = metrics.get(kind, {}) or {}
        kept: dict = {}
        for name, series in table.items():
            rows = [_sanitize_series(s) for s in series
                    if keep(s.get("Labels", {}) or {})]
            if rows:
                kept[str(name)] = rows
        out[kind] = kept
    return out


def owned_metrics(metrics: dict, host: str) -> dict:
    """The sub-registry a single host owns inside a full scrape."""
    return _filter_metrics(metrics, lambda labels: series_owner(labels) == host)


def unowned_metrics(metrics: dict) -> dict:
    """Deployment-wide series that carry no owning host label."""
    return _filter_metrics(metrics, lambda labels: series_owner(labels) is None)


def merge_counter_totals(sections: dict, fleet: dict) -> dict:
    """Sum selected counters across every host section plus the fleet pool."""
    totals = {name: 0 for name in _TOTAL_COUNTERS}
    tables = [sec.get("Metrics", {}).get("Counters", {}) or {}
              for sec in sections.values()]
    tables.append(fleet.get("Counters", {}) or {})
    for table in tables:
        for name in _TOTAL_COUNTERS:
            for row in table.get(name, ()):
                totals[name] += int(row.get("Value", 0))
    return totals


class FleetAggregator:
    """Broker-side scraper producing versioned fleet snapshots.

    One instance hangs off :class:`~repro.server.broker_service.BrokerService`
    as ``broker.fleet``.  ``scrape()`` pulls ``/api/metrics`` (and
    ``/api/health`` where the broker holds a store key) from the broker
    itself plus every paired store, bumping :attr:`version` each time.
    """

    #: Default sim-ms between periodic scrapes (see :meth:`maybe_scrape`).
    DEFAULT_INTERVAL_MS = 10_000

    def __init__(self, broker, *, interval_ms: int = DEFAULT_INTERVAL_MS):
        self.broker = broker
        self.interval_ms = int(interval_ms)
        self.version = 0
        self.last_snapshot: Optional[dict] = None
        self._last_scrape_ms: Optional[int] = None
        #: host -> last successfully scraped section (tombstone source).
        self._seen: dict[str, dict] = {}
        #: scrape client: no retry policy, so a dead host costs one probe
        #: (and tombstones immediately) instead of a backoff loop.
        self._client = HttpClient(broker.network, name=broker.host)

    # -- plumbing --------------------------------------------------------

    @property
    def _obs(self):
        return self.broker.network.obs

    def _now_ms(self) -> int:
        return int(self.broker.network.clock.now_ms())

    def targets(self) -> list:
        """Hosts to scrape: the broker itself plus every paired store."""
        return [self.broker.host] + sorted(self.broker.store_keys)

    # -- scraping --------------------------------------------------------

    def _health(self, host: str) -> dict:
        key = self.broker.store_keys.get(host)
        if key is None:
            return {"Role": "broker", "Epoch": 0, "AppliedLsn": 0}
        body = self._client.with_key(key).post(f"https://{host}/api/health", {})
        return {
            "Role": str(body.get("Role", "")),
            "Epoch": int(body.get("Epoch", 0)),
            "AppliedLsn": int(body.get("AppliedLsn", 0)),
            "FailClosed": list(body.get("FailClosed", [])),
        }

    def _scrape_host(self, host: str) -> dict:
        body = self._client.get(f"https://{host}/api/metrics")
        metrics = dict(body.get("Metrics", {}) or {})
        if host == self.broker.host:
            section_metrics = owned_metrics(metrics, host)
            fleet_pool = unowned_metrics(metrics)
        else:
            section_metrics = owned_metrics(metrics, host)
            fleet_pool = None
        section = {
            "Reachable": True,
            "Tombstoned": False,
            "Error": "",
            "Metrics": section_metrics,
        }
        section.update(self._health(host))
        return {"section": section, "fleet": fleet_pool}

    def scrape(self) -> dict:
        """Scrape the fleet now; returns (and retains) a fresh snapshot."""
        obs = self._obs
        tracer = obs.tracer
        self.version += 1
        now = self._now_ms()
        self._last_scrape_ms = now
        sections: dict = {}
        fleet_pool: dict = {"Counters": {}, "Gauges": {}, "Histograms": {}}
        unreachable = 0
        with tracer.start_span("fleet.scrape", broker=self.broker.host) as span:
            targets = self.targets()
            for host in targets:
                try:
                    scraped = self._scrape_host(host)
                except OverloadedError:
                    # An admission shed is an *answer*: the host is alive
                    # and browning out by design (scrapes go dark first).
                    # Serve its last good section flagged Overloaded —
                    # never "down", never a scrape error.
                    last = self._seen.get(host)
                    sections[host] = {
                        **(last or {"Metrics": {}}),
                        "Reachable": True,
                        "Overloaded": True,
                    }
                    continue
                except SensorSafeError as exc:
                    unreachable += 1
                    obs.metrics.counter("fleet_scrape_errors_total", host=host).inc()
                    last = self._seen.get(host)
                    sections[host] = {
                        **(last or {"Metrics": {}}),
                        "Reachable": False,
                        "Tombstoned": last is not None,
                        "Error": f"{type(exc).__name__}: {exc}"[:120],
                    }
                    continue
                sections[host] = scraped["section"]
                self._seen[host] = dict(scraped["section"])
                if scraped["fleet"] is not None:
                    fleet_pool = scraped["fleet"]
            # Hosts we once scraped but that left the target list entirely
            # still appear, tombstoned — fleet history must not shrink.
            for host, last in sorted(self._seen.items()):
                if host not in sections:
                    sections[host] = {**last, "Reachable": False,
                                      "Tombstoned": True, "Error": "unregistered"}
            span.set_attributes(hosts=len(sections), unreachable=unreachable,
                                version=self.version)
        obs.metrics.counter("fleet_scrapes_total").inc()
        snapshot = {
            "Version": self.version,
            "ScrapedAtMs": now,
            "Broker": self.broker.host,
            "Hosts": sections,
            "Fleet": fleet_pool,
            "Totals": merge_counter_totals(sections, fleet_pool),
            "Slo": obs.slo.report(at_ms=now),
            "SlowQueries": obs.costs.slow_queries(limit=10),
            "FailoverEvents": [dict(e) for e in self.broker.failover.events],
            "Shards": self._shard_section(),
        }
        self.last_snapshot = snapshot
        return snapshot

    def _shard_section(self) -> dict:
        """Routing-table + rebalance summary for the fleet snapshot.

        Tolerates a broker without the directory wiring (older drills)
        by returning an empty section rather than failing the scrape.
        """
        directory = getattr(self.broker, "directory", None)
        rebalancer = getattr(self.broker, "rebalancer", None)
        if directory is None:
            return {}
        return {
            "Directory": directory.status(),
            "MigrationEvents": (
                [dict(e) for e in rebalancer.events] if rebalancer else []
            ),
            "ActiveMigrations": rebalancer.active if rebalancer else 0,
        }

    def maybe_scrape(self) -> Optional[dict]:
        """Scrape iff the configured interval elapsed (heartbeat-driven).

        No-ops entirely when telemetry is disabled: a telemetry-off
        deployment must not pay scrape traffic (the C15 baseline).
        """
        if not self._obs.enabled:
            return None
        now = self._now_ms()
        if (self._last_scrape_ms is not None
                and now - self._last_scrape_ms < self.interval_ms):
            return None
        return self.scrape()


# ----------------------------------------------------------------------
# Rendering and the `repro obs fleet` CLI
# ----------------------------------------------------------------------


def _fmt_count(value) -> str:
    return f"{int(value):,}"


def _host_counter(section: dict, name: str) -> int:
    rows = section.get("Metrics", {}).get("Counters", {}).get(name, ())
    return sum(int(r.get("Value", 0)) for r in rows)


def render_fleet(snapshot: dict) -> str:
    """Human-readable rendering of one fleet snapshot."""
    hosts = snapshot.get("Hosts", {})
    reachable = sum(1 for s in hosts.values() if s.get("Reachable"))
    tombstoned = sum(1 for s in hosts.values() if s.get("Tombstoned"))
    lines = [
        f"fleet snapshot v{snapshot.get('Version')} @ "
        f"{snapshot.get('ScrapedAtMs')} ms — broker {snapshot.get('Broker')!r}, "
        f"{len(hosts)} hosts ({reachable} reachable, {tombstoned} tombstoned)",
        "",
        f"{'HOST':<18} {'ROLE':<8} {'EPOCH':>5} {'STATE':<10} "
        f"{'REQS':>8} {'BYTES_IN':>12} {'APPLIED':>8}",
    ]
    for host in sorted(hosts):
        section = hosts[host]
        state = ("tombstone" if section.get("Tombstoned")
                 else "busy" if section.get("Overloaded")
                 else "up" if section.get("Reachable") else "down")
        lines.append(
            f"{host:<18} {section.get('Role', '?'):<8} "
            f"{section.get('Epoch', 0):>5} {state:<10} "
            f"{_fmt_count(_host_counter(section, 'net_requests_total')):>8} "
            f"{_fmt_count(_host_counter(section, 'net_bytes_in_total')):>12} "
            f"{section.get('AppliedLsn', 0):>8}"
        )
    totals = snapshot.get("Totals", {})
    if totals:
        lines += ["", "fleet totals:"]
        for name in sorted(totals):
            lines.append(f"  {name:<36} {_fmt_count(totals[name]):>12}")
    slo = snapshot.get("Slo", {})
    if slo:
        lines += ["", "privacy SLOs:"]
        for key in ("RevocationLatencyMs", "FailClosedDwellMs",
                    "FailoverDetectionMs"):
            summary = slo.get(key, {})
            lines.append(
                f"  {key:<22} count={summary.get('Count', 0):<5} "
                f"p50={summary.get('P50', 0):<8.0f} p95={summary.get('P95', 0):<8.0f} "
                f"p99={summary.get('P99', 0):<8.0f} breaches={summary.get('Breaches', 0)} "
                f"burn={summary.get('BurnRate', 0):<6} {summary.get('Status', 'ok')}"
            )
        lag = slo.get("ReplicationLagFrames", {})
        lines.append(
            f"  {'ReplicationLagFrames':<22} worst={lag.get('Worst', 0)} "
            f"threshold={lag.get('Threshold', 0)} "
            f"breaching={lag.get('Breaching', 0)} {lag.get('Status', 'ok')}"
        )
        goodput = slo.get("Goodput", {})
        lines.append(
            f"  {'Goodput':<22} served={_fmt_count(goodput.get('Served', 0))} "
            f"shed={_fmt_count(goodput.get('Shed', 0))} "
            f"ratio={goodput.get('Goodput', 1.0):.4f} "
            f"floor={goodput.get('Threshold', 0)} "
            f"burn={goodput.get('BurnRate', 0)} {goodput.get('Status', 'ok')}"
        )
        open_rev = slo.get("OpenRevocations", [])
        if open_rev:
            lines.append("  open revocations:")
            for rev in open_rev:
                lines.append(
                    f"    {rev['Contributor']} age={rev['AgeMs']}ms "
                    f"stale_releases={rev['StaleReleases']}"
                )
        open_fc = slo.get("OpenFailClosed", [])
        if open_fc:
            lines.append("  open fail-closed dwells:")
            for item in open_fc:
                lines.append(
                    f"    {item['Contributor']}@{item['Store']} "
                    f"dwell={item['DwellMs']}ms"
                )
    slow = snapshot.get("SlowQueries", [])
    if slow:
        lines += ["", f"slow queries (top {len(slow)}):"]
        for entry in slow:
            lines.append(
                f"  {entry.get('DurationUs', 0):>10.1f}us "
                f"{entry.get('Endpoint', '?'):<15} {entry.get('Store', '?'):<14} "
                f"{entry.get('Consumer', '?')}->{entry.get('Contributor', '?')} "
                f"scanned={entry.get('SegmentsScanned', 0)} "
                f"released={entry.get('SegmentsReleased', 0)} "
                f"trace={entry.get('TraceId', '')}"
            )
    events = snapshot.get("FailoverEvents", [])
    if events:
        lines += ["", "failover events:"]
        for event in events:
            lines.append(
                f"  {event.get('Event', '?'):<10} set={event.get('Set', '?')} "
                f"host={event.get('Host', '?')} epoch={event.get('Epoch', 0)} "
                f"at={event.get('AtMs', 0)}ms trace={event.get('TraceId', '')}"
            )
    shards = snapshot.get("Shards", {})
    directory = shards.get("Directory", {})
    if directory.get("Shards"):
        lines += [
            "",
            f"shards (routing epoch {directory.get('Epoch', 0)}, "
            f"{directory.get('Contributors', 0)} contributors, "
            f"{directory.get('OffRing', 0)} off-ring, "
            f"{shards.get('ActiveMigrations', 0)} migrating):",
        ]
        for host, count in sorted(directory["Shards"].items()):
            lines.append(f"  {host:<18} {_fmt_count(count):>8} contributors")
        for event in shards.get("MigrationEvents", []):
            lines.append(
                f"  migrate {event.get('Source', '?')} -> {event.get('Dest', '?')} "
                f"moved={event.get('Moved', 0)} "
                f"records={event.get('RecordsShipped', 0)} "
                f"fail_closed={len(event.get('FailClosed', []))} "
                f"epoch={event.get('RoutingEpoch', 0)} "
                f"trace={event.get('TraceId', '')}"
            )
    return "\n".join(lines)


def run_fleet_scenario(*, drill: bool = False, seed: int = 7):
    """Build a replicated deployment, drive load, return (system, snapshot).

    The scenario mirrors the C12/C15 shape: one replicated store
    (semi-sync, two replicas), uploads + consumer queries, one rule
    revocation, and — with ``drill=True`` — a primary kill plus
    broker-driven failover, so the rendered report exercises tombstoning,
    SLO settlement, and the slow-query log in one run.  The scratch
    directory is left to the OS tempdir reaper.
    """
    import tempfile

    import numpy as np

    from repro.core.system import SensorSafeSystem
    from repro.datastore.wavesegment import WaveSegment
    from repro.rules.model import ALLOW, Rule
    from repro.util.geo import LatLon
    from repro.util.timeutil import timestamp_ms

    monday = timestamp_ms(2011, 2, 7)

    def segment(i, n=32):
        return WaveSegment(
            contributor="alice",
            channels=("ECG",),
            start_ms=monday + i * 3_600_000,
            interval_ms=1000,
            values=np.arange(n, dtype=float).reshape(n, 1),
            location=LatLon(34.0689, -118.4452),
            context={"Activity": "Still", "Stress": "NotStressed"},
        )

    workdir = tempfile.mkdtemp(prefix="sensorsafe-fleet-")
    system = SensorSafeSystem(seed=seed)
    primary = system.create_replicated_store(
        "alice-store", directory=workdir, n_replicas=2, mode="semi-sync"
    )
    alice = system.add_contributor("alice", store=primary)
    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    alice.add_rule(Rule(consumers=("bob",), action=ALLOW))
    for i in range(6):
        alice.upload_segments([segment(i)])
        alice.flush()
        system.clock.advance(2_000)
        system.broker.failover.heartbeat()
    for _ in range(6):
        bob.fetch("alice")
        system.clock.advance(500)
    # A revocation: deny-by-default again, then re-allow — the SLO tracker
    # settles one revocation-latency sample per mutation.
    alice.replace_rules([])
    system.clock.advance(700)
    bob.fetch("alice")
    alice.replace_rules([Rule(consumers=("bob",), action=ALLOW)])
    system.clock.advance(300)
    bob.fetch("alice")
    if drill:
        system.network.unregister_host("alice-store")
        for _ in range(system.broker.failover.miss_threshold + 1):
            system.clock.advance(2_000)
            system.broker.failover.heartbeat()
        system.repoint_contributor("alice")
        bob.fetch("alice")
    snapshot = system.broker.fleet.scrape()
    return system, snapshot


def main(argv=None) -> int:
    """Entry point for ``python -m repro obs fleet``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro obs fleet",
        description="Scrape and render a fleet telemetry snapshot "
        "from a simulated replicated deployment.",
    )
    parser.add_argument("--drill", action="store_true",
                        help="kill the primary and fail over before scraping")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the raw snapshot JSON to this file")
    args = parser.parse_args(argv)
    _, snapshot = run_fleet_scenario(drill=args.drill, seed=args.seed)
    print(render_fleet(snapshot))
    if args.json_out:
        import os

        directory = os.path.dirname(args.json_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        print(f"\nwrote fleet snapshot to {args.json_out}")
    return 0
