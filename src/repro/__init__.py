"""SensorSafe: privacy-preserving management of personal sensory information.

A full reproduction of Choi, Chakraborty, Charbiwala & Srivastava,
"SensorSafe: a Framework for Privacy-Preserving Management of Personal
Sensory Information" (Secure Data Management workshop @ VLDB 2011).

Quick start::

    from repro import SensorSafeSystem, Rule, ALLOW, abstraction, DataQuery

    system = SensorSafeSystem()
    alice = system.add_contributor("alice")
    alice.add_rule(Rule(consumers=("bob",), action=ALLOW))
    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    released = bob.fetch("alice", DataQuery())

See DESIGN.md for the architecture inventory and EXPERIMENTS.md for the
reproduced tables/figures and claim benchmarks.
"""

from repro.core import Consumer, Contributor, SensorSafeSystem
from repro.datastore import DataQuery, MergePolicy, SegmentStore, WaveSegment
from repro.rules import (
    ALLOW,
    DENY,
    Action,
    ReleasedSegment,
    Rule,
    RuleEngine,
    abstraction,
    rule_from_json,
    rule_to_json,
)
from repro.broker import SearchCriteria
from repro.datastore.aggregate import AggregateRow, AggregateSpec
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.rules.recommend import RuleSuggestion, suggest_rules
from repro.collection import PhoneConfig, SmartphoneAgent
from repro.sensors import (
    Persona,
    SensorPacket,
    SimulatorConfig,
    TraceSimulator,
    make_persona,
)
from repro.util import Interval, RepeatedTime, TimeCondition
from repro.util.timeutil import timestamp_ms

__version__ = "0.1.0"

__all__ = [
    "Consumer",
    "Contributor",
    "SensorSafeSystem",
    "DataQuery",
    "MergePolicy",
    "SegmentStore",
    "WaveSegment",
    "ALLOW",
    "DENY",
    "Action",
    "ReleasedSegment",
    "Rule",
    "RuleEngine",
    "abstraction",
    "rule_from_json",
    "rule_to_json",
    "SearchCriteria",
    "AggregateRow",
    "AggregateSpec",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "RuleSuggestion",
    "suggest_rules",
    "PhoneConfig",
    "SmartphoneAgent",
    "Persona",
    "SensorPacket",
    "SimulatorConfig",
    "TraceSimulator",
    "make_persona",
    "Interval",
    "RepeatedTime",
    "TimeCondition",
    "timestamp_ms",
    "__version__",
]
