"""The durability manager: WAL + checkpoints wired into a live service.

One :class:`Durability` instance owns crash safety for one
:class:`~repro.server.datastore_service.DataStoreService`:

* :meth:`open` runs :func:`~repro.storage.recovery.recover_service`
  (snapshot + WAL replay + fail-closed), then opens the write-ahead log
  and hooks every mutation source — rule changes, segment persists and
  unpersists, audit appends — so each is journaled *before* the API call
  that caused it returns;
* :meth:`checkpoint` snapshots the full service state through the atomic
  writer, records a manifest (generation marker + checkpoint LSN + file
  SHA-256s), and resets the WAL.  A crash at *any* interior point leaves a
  state recovery handles: the manifest and log cover each other.

Durability classes: control-plane records (rules, roles, places, audit)
are appended with ``force_sync`` — an acknowledged rule change is on disk
before the ack, whatever the sync policy — while bulk segment data rides
the group-commit window until a *barrier-bearing* request (``flush``,
``delete``) calls :meth:`commit`.  A crash can therefore lose the last
un-flushed uploads — data the device still buffers and re-sends — which
is the bounded-loss trade that keeps WAL overhead on ingest inside the
benchmark C10 budget.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exceptions import CorruptRecordError, StorageError
from repro.storage.atomic import atomic_write_bytes, file_sha256
from repro.storage.recovery import (
    OP_AUDIT,
    OP_PLACES,
    OP_ROLE,
    OP_RULES,
    OP_SEGMENT,
    OP_SEGMENT_DELETE,
    RecoveryReport,
    manifest_path,
    recover_service,
    wal_path,
)
from repro.storage.wal import SYNC_GROUP, WriteAheadLog, scan_wal
from repro.util import jsonutil


class Durability:
    """Crash-safe persistence for one data store service."""

    def __init__(
        self,
        service,
        *,
        directory: Optional[str] = None,
        sync: str = SYNC_GROUP,
        faults=None,
    ):
        self.service = service
        self.directory = directory or service.store.db.directory
        if self.directory is None:
            raise StorageError(
                f"store {service.host!r} has no persistence directory; "
                "durability needs one"
            )
        self.sync = sync
        self.faults = faults
        self.wal: Optional[WriteAheadLog] = None
        self.generation = 0
        #: LSN the last checkpoint covered (0 before any checkpoint).  The
        #: current WAL generation holds only frames *above* this, which is
        #: what tells a WAL shipper whether frames alone can converge a
        #: resyncing replica or a snapshot bootstrap must precede them.
        self.checkpoint_lsn = 0
        self.recovery_report: Optional[RecoveryReport] = None
        obs = service.network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            host = service.host
            self._c_appends = m.counter("wal_appends_total", store=host)
            self._c_commits = m.counter("wal_commits_total", store=host)
            self._c_checkpoints = m.counter("checkpoints_total", store=host)
            m.gauge(
                "wal_size_bytes",
                callback=lambda: self.wal.size_bytes() if self.wal is not None else 0,
                store=host,
            )
            m.gauge(
                "wal_io_seconds",
                callback=lambda: self.wal.io_seconds if self.wal is not None else 0.0,
                store=host,
            )
        else:
            self._c_appends = None
            self._c_commits = None
            self._c_checkpoints = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> RecoveryReport:
        """Recover from disk, then start journaling every mutation."""
        report = recover_service(self.service, self.directory, obs=self.obs)
        self.generation = report.generation
        self.checkpoint_lsn = report.checkpoint_lsn
        self.recovery_report = report
        os.makedirs(self.directory, exist_ok=True)
        # recover_service repaired the log, so a fresh scan is clean — but
        # after a checkpoint reset it the file alone says next_lsn=1.  Seed
        # the LSN from the manifest too, or every post-restart mutation
        # would be numbered at or below CheckpointLsn and silently skipped
        # by the replay filter on the *next* recovery (a committed rule
        # change lost without any corruption signal).
        scan = scan_wal(wal_path(self.directory, self.service.host))
        if scan.corrupt or scan.torn:
            raise CorruptRecordError(
                f"WAL {scan.path!r} still damaged after recovery "
                f"({scan.corrupt_reason or 'torn tail'})"
            )
        scan.next_lsn = max(scan.next_lsn, report.checkpoint_lsn + 1)
        self.wal = WriteAheadLog(
            wal_path(self.directory, self.service.host),
            sync=self.sync,
            faults=self.faults,
            resume=scan,
        )
        # Journal the fail-closed deny state itself: a second crash before
        # the next checkpoint must recover to *deny*, not to the damage.
        for contributor in report.fail_closed:
            self._append(
                OP_RULES,
                self.service.rules.snapshot(contributor).to_json(),
                control=True,
            )
        self._attach()
        return report

    def _attach(self) -> None:
        service = self.service
        service.rules.on_change(
            lambda snapshot: self._append(OP_RULES, snapshot.to_json(), control=True)
        )
        service.store.on_persist.append(
            lambda segment: self._append(OP_SEGMENT, segment.to_json())
        )
        service.store.on_unpersist.append(
            lambda segment: self._append(
                OP_SEGMENT_DELETE, {"SegmentId": segment.segment_id}
            )
        )
        service.audit.on_append(
            lambda record: self._append(OP_AUDIT, record.to_json(), control=True)
        )

    def close(self) -> None:
        """Close the WAL; journaling stops until open() runs again."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------

    def _append(self, op: str, data: dict, *, control: bool = False) -> Optional[int]:
        if self.wal is None:  # recovery replay phase, or closed
            return None
        lsn = self.wal.append(op, data, force_sync=control)
        if self._c_appends is not None:
            self._c_appends.inc()
        return lsn

    def log_places(self, contributor: str) -> None:
        """Journal a places update (control plane: feeds rule semantics)."""
        places = self.service.places.get(contributor, {})
        self._append(
            OP_PLACES,
            {
                "Contributor": contributor,
                "Places": [p.to_json() for p in places.values()],
            },
            control=True,
        )

    def log_role(self, principal: str, role: str) -> None:
        """Journal a principal registration (control plane)."""
        self._append(OP_ROLE, {"Principal": principal, "Role": role}, control=True)

    def commit(self) -> None:
        """Group-commit barrier: everything journaled so far becomes durable.

        The service calls this from barrier-bearing requests (``flush``,
        ``delete``) and before every checkpoint, so those acks imply the
        journal entries are on disk; plain uploads ride the group window.
        """
        if self.wal is not None:
            self.wal.commit()
            if self._c_commits is not None:
                self._c_commits.inc()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot state atomically, write the manifest, reset the WAL.

        Interior crash states and why each recovers:

        * during a snapshot file write — temp file torn, live file intact;
          old manifest still matches old files; WAL still covers the delta;
        * after snapshots, before the manifest rename — files are new but
          the old manifest's checksums no longer match: recovery
          quarantines per the matrix and the WAL replay re-applies (rule
          replay is version-monotonic, segment replay idempotent);
        * after the manifest rename, before the WAL reset — manifest's
          CheckpointLsn makes the replay skip everything the snapshot
          already contains.
        """
        if self.wal is None:
            raise StorageError("durability not opened; call open() first")
        from repro.server.persistence import save_service_state

        faults = self.faults
        if faults is not None:
            faults.at_point("checkpoint.pre_snapshot")
        # Flush the optimizer first: finalized segments journal now, below
        # the LSN the manifest will claim to cover.
        self.service.store.flush()
        self.wal.commit()
        checkpoint_lsn = self.wal.last_lsn
        paths = save_service_state(self.service, self.directory, faults=faults)
        manifest = {
            "Host": self.service.host,
            "Generation": self.generation + 1,
            "CheckpointLsn": checkpoint_lsn,
            "Files": {
                os.path.basename(path): file_sha256(path) for path in paths
            },
        }
        atomic_write_bytes(
            manifest_path(self.directory, self.service.host),
            (jsonutil.canonical_dumps(manifest) + "\n").encode("utf-8"),
            faults=faults,
            point="checkpoint.manifest",
        )
        self.generation += 1
        self.checkpoint_lsn = checkpoint_lsn
        if faults is not None:
            faults.at_point("checkpoint.pre_wal_reset")
        self.wal.reset()
        if faults is not None:
            faults.at_point("checkpoint.done")
        if self._c_checkpoints is not None:
            self._c_checkpoints.inc()
        return manifest
