"""Crash-safe durability: WAL, atomic snapshots, fault injection, recovery.

Losing a privacy *rule* silently widens sharing — the worst failure mode a
privacy system can have — so this package treats every byte of persisted
state as suspect until proven intact:

* :mod:`repro.storage.atomic` — temp + fsync + rename file replacement;
* :mod:`repro.storage.wal` — checksummed, length-prefixed, chained
  write-ahead log with torn-tail vs corruption classification;
* :mod:`repro.storage.faults` — deterministic, seeded crash/torn-write/
  bit-flip injection (the disk-side sibling of :mod:`repro.net.faults`);
* :mod:`repro.storage.recovery` — replay + quarantine + fail-closed;
* :mod:`repro.storage.durability` — the manager wiring it into a service;
* :mod:`repro.storage.replication` — WAL shipping to replica stores with
  verify-then-replay application and epoch fencing.
"""

from repro.storage.atomic import atomic_write_bytes, atomic_write_jsonl, file_sha256
from repro.storage.durability import Durability
from repro.storage.faults import CRASH_POINTS, StorageFaultPlan, StorageFaultRule
from repro.storage.replication import ReplicaApplier, WalShipper, read_wal_frames
from repro.storage.recovery import (
    RecoveryReport,
    manifest_path,
    quarantine_dir,
    recover_service,
    wal_path,
)
from repro.storage.wal import (
    GROUP_COMMIT_APPENDS,
    SYNC_ALWAYS,
    SYNC_GROUP,
    SYNC_NEVER,
    WalScan,
    WriteAheadLog,
    repair_wal,
    scan_wal,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_jsonl",
    "file_sha256",
    "Durability",
    "CRASH_POINTS",
    "StorageFaultPlan",
    "StorageFaultRule",
    "ReplicaApplier",
    "WalShipper",
    "read_wal_frames",
    "RecoveryReport",
    "manifest_path",
    "quarantine_dir",
    "recover_service",
    "wal_path",
    "GROUP_COMMIT_APPENDS",
    "SYNC_ALWAYS",
    "SYNC_GROUP",
    "SYNC_NEVER",
    "WalScan",
    "WriteAheadLog",
    "repair_wal",
    "scan_wal",
]
