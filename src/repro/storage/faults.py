"""Deterministic storage fault injection: crashes, torn writes, bit-flips.

The disk-side sibling of :mod:`repro.net.faults`.  Network faults prove
the *protocols* survive loss; storage faults prove the *durability layer*
survives power loss mid-write.  A :class:`StorageFaultPlan` is threaded
through the write-ahead log and the atomic snapshot writer, which consult
it at named **crash points** — ``wal.append.pre_write``,
``checkpoint.manifest.pre_rename``, … — so a test can kill the process at
every intermediate on-disk state and assert recovery handles each one.

Fault kinds:

* **crash** — raise :class:`~repro.exceptions.SimulatedCrashError` at a
  point, leaving the file exactly as the real kernel would after power
  loss at that instant;
* **torn write** — write only a prefix of the payload (fraction derived
  deterministically from the seed unless pinned), then crash: the classic
  torn page / short ``write(2)``;
* **bit-flip** — :meth:`corrupt_file` flips one deterministic bit of an
  existing file: silent media corruption, no crash.

Every variable decision hashes ``(seed, rule index, hit counter)`` — never
global randomness — so a seed reproduces the same damage byte for byte,
the same property benchmark C7 asserts for the network plan.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import SimulatedCrashError

CRASH = "crash"
TORN = "torn"

#: Crash points the durability layer exposes, in write-path order.  The
#: crash-sweep conformance test iterates this list; adding a new fsync or
#: rename to the WAL/checkpoint code should add its points here so the
#: sweep automatically covers them.
CRASH_POINTS = (
    "wal.append.pre_write",
    "wal.append.write",  # torn frame: only a prefix of the frame lands
    "wal.append.pre_fsync",
    "wal.append.post_fsync",
    "wal.commit.pre_fsync",
    "checkpoint.pre_snapshot",
    "snapshot.pre_write",
    "snapshot.write",  # torn temp file; the live file is never touched
    "snapshot.pre_rename",
    "snapshot.post_rename",
    "checkpoint.manifest.pre_write",
    "checkpoint.manifest.pre_rename",
    "checkpoint.manifest.post_rename",
    "checkpoint.pre_wal_reset",
    "checkpoint.done",
)


@dataclass
class StorageFaultRule:
    """One armed fault: fires when its point is hit the ``at_hit``-th time."""

    kind: str
    point: str  # prefix-matched against the crash-point name
    at_hit: int = 0  # fire on the Nth matching hit (0 = first)
    fraction: Optional[float] = None  # torn: payload prefix fraction
    hits: int = 0

    def matches(self, point: str) -> bool:
        """Whether this rule fires at the named fault point."""
        return point.startswith(self.point)


@dataclass
class StorageFaultEvent:
    """One decision, for the reproducibility log."""

    seq: int
    point: str
    path: str
    kind: str
    outcome: str  # "crash" | "torn:<bytes>/<total>" | "flip:<offset>.<bit>" | "pass"

    def line(self) -> str:
        """One-line human-readable description of the event."""
        return f"{self.seq}\t{self.point}\t{self.path}\t{self.kind}\t{self.outcome}"


class StorageFaultPlan:
    """A seeded, reproducible schedule of storage faults.

    Hand to a durable service (``DataStoreService(..., storage_faults=plan)``)
    or directly to :class:`~repro.storage.wal.WriteAheadLog` /
    :func:`~repro.storage.atomic.atomic_write_bytes`::

        plan = StorageFaultPlan(seed=7)
        plan.add_crash("checkpoint.manifest.pre_rename")
        plan.add_torn_write("wal.append", at_hit=3)
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rules: list[StorageFaultRule] = []
        self.log: list[StorageFaultEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def add_rule(self, rule: StorageFaultRule) -> StorageFaultRule:
        """Install one fault rule; returns it for chaining."""
        self.rules.append(rule)
        return rule

    def add_crash(self, point: str, *, at_hit: int = 0) -> StorageFaultRule:
        """Die at ``point`` (prefix match) on its ``at_hit``-th hit."""
        return self.add_rule(StorageFaultRule(CRASH, point, at_hit=at_hit))

    def add_torn_write(
        self, point: str, *, at_hit: int = 0, fraction: Optional[float] = None
    ) -> StorageFaultRule:
        """Write a payload prefix at ``point``, then die.

        ``fraction`` pins the surviving prefix; left ``None`` it is derived
        from the seed, so a seed sweep explores many tear offsets.
        """
        return self.add_rule(
            StorageFaultRule(TORN, point, at_hit=at_hit, fraction=fraction)
        )

    # ------------------------------------------------------------------
    # Hooks consulted by the write paths
    # ------------------------------------------------------------------

    def _roll(self, rule_index: int, hit: int) -> float:
        material = f"{self.seed}\x1f{rule_index}\x1f{hit}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _record(self, point: str, path: str, kind: str, outcome: str) -> None:
        self.log.append(StorageFaultEvent(self._seq, point, path or "", kind, outcome))
        self._seq += 1

    def at_point(self, point: str, *, path: Optional[str] = None) -> None:
        """Crash check for a non-write point (pre/post fsync, rename, …)."""
        for index, rule in enumerate(self.rules):
            if rule.kind != CRASH or not rule.matches(point):
                continue
            hit = rule.hits
            rule.hits += 1
            if hit == rule.at_hit:
                self._record(point, path, CRASH, "crash")
                raise SimulatedCrashError(point, hit)
            self._record(point, path, CRASH, "pass")

    def write(self, point: str, fh, data: bytes, *, path: Optional[str] = None) -> None:
        """Write ``data`` to ``fh``, honouring torn-write rules at ``point``."""
        for index, rule in enumerate(self.rules):
            if rule.kind != TORN or not rule.matches(point):
                continue
            hit = rule.hits
            rule.hits += 1
            if hit != rule.at_hit:
                self._record(point, path, TORN, "pass")
                continue
            fraction = rule.fraction
            if fraction is None:
                fraction = self._roll(index, hit)
            keep = min(len(data), int(len(data) * fraction))
            fh.write(data[:keep])
            fh.flush()
            try:
                os.fsync(fh.fileno())  # the torn prefix is what survives
            except OSError:  # pragma: no cover - non-file handles in tests
                pass
            self._record(point, path, TORN, f"torn:{keep}/{len(data)}")
            raise SimulatedCrashError(point, hit)
        fh.write(data)

    # ------------------------------------------------------------------
    # Silent media corruption
    # ------------------------------------------------------------------

    def corrupt_file(self, path: str, *, salt: int = 0) -> tuple:
        """Flip one deterministic bit of an existing file.

        Returns ``(offset, bit)``.  No crash — this models latent media
        corruption found only when the file is next read, which is why
        every durable record carries a checksum.
        """
        size = os.path.getsize(path)
        if size == 0:
            raise ValueError(f"cannot corrupt empty file {path!r}")
        material = f"{self.seed}\x1fflip\x1f{salt}".encode()
        digest = hashlib.sha256(material).digest()
        offset = int.from_bytes(digest[:8], "big") % size
        bit = digest[8] % 8
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ (1 << bit)]))
        self._record("corrupt_file", path, "bitflip", f"flip:{offset}.{bit}")
        return offset, bit

    # ------------------------------------------------------------------
    # Reproducibility instrument
    # ------------------------------------------------------------------

    def schedule_bytes(self) -> bytes:
        """Canonical decision log; identical seeds ⇒ identical bytes."""
        return "\n".join(event.line() for event in self.log).encode("utf-8")
