"""Contributor migration primitives: the WAL as the shard transfer log.

A shard split moves a *contributor range* from a source store to a
destination store while both keep serving.  The mechanics reuse the PR 6
replication machinery end to end, restricted to the moving contributors:

* :func:`migration_records` — the snapshot bootstrap: the source's
  durable state for the moving contributors, shaped exactly like WAL
  payloads (the same ``(op, data)`` records
  :func:`repro.storage.replication.bootstrap_records` ships to a
  resyncing replica).
* :func:`wal_records_since` — the catch-up log: frames appended to the
  source's WAL since a given LSN, CRC/chain-verified by
  :func:`repro.storage.replication.read_wal_frames`, decoded and
  filtered down to ops that concern the moving contributors.  Writes
  that race the bootstrap are drained by re-running this with a higher
  ``from_lsn`` until the delta is empty — and once the source is fenced,
  one final pass picks up everything that committed before the fence,
  which is what makes cutover lose nothing.
* :func:`install_records` — the destination-side apply: every record
  goes through :func:`repro.storage.recovery._apply` (the only code path
  trusted to mutate state from a log) and is re-journaled into the
  destination's own WAL, so a destination crash after cutover recovers
  the migrated contributors like any native ones.

Every record kind is idempotent or last-wins (rule snapshots carry
versions, segments dedupe by id, audit dedupes per seq), so overlapping
bootstrap + catch-up rounds converge instead of double-applying — the
same property replica resync already relies on.

Sources that are not durable have no WAL to tail; for them the catch-up
"delta" degrades to a fresh full snapshot, which the same idempotency
makes safe (just more bytes).  The coordinator in
:mod:`repro.broker.rebalance` drives the phases and the privacy
fail-closed verification at cutover.
"""

from __future__ import annotations

from repro.storage.replication import _CONTROL_OPS, read_wal_frames
from repro.util import jsonutil


def _record_contributor(op: str, data: dict) -> str:
    """The contributor one WAL-shaped record belongs to ('' = store-wide)."""
    from repro.storage.recovery import (
        OP_AUDIT,
        OP_PLACES,
        OP_ROLE,
        OP_RULES,
        OP_SEGMENT,
    )

    if op == OP_SEGMENT:
        return str(data.get("Contributor", ""))
    if op in (OP_RULES, OP_PLACES, OP_AUDIT):
        return str(data.get("Contributor", ""))
    if op == OP_ROLE:
        return str(data.get("Principal", ""))
    return ""


def record_concerns(op: str, data: dict, contributors) -> bool:
    """Does one record belong to any of the moving contributors?

    Segment deletions carry only a segment id, whose owner the
    *destination* resolves: ``remove_segment`` of an id it never saw is a
    no-op, so shipping every deletion is safe and shipping none would
    resurrect deleted data — deletions always travel.
    """
    from repro.storage.recovery import OP_SEGMENT_DELETE

    if op == OP_SEGMENT_DELETE:
        return True
    return _record_contributor(op, data) in contributors


def migration_records(service, contributors) -> list:
    """Snapshot bootstrap of the moving contributors, as ``(op, data)``.

    The per-contributor slice of
    :func:`repro.storage.replication.bootstrap_records`: roles (so the
    destination recognizes the contributor principal), segments, the
    rule snapshot (with its version — the thing cutover verification
    checks), labeled places, and the audit trail (data ownership
    includes the access history; it must move with the data).
    """
    from repro.storage.recovery import (
        OP_AUDIT,
        OP_PLACES,
        OP_ROLE,
        OP_RULES,
        OP_SEGMENT,
    )

    moving = set(contributors)
    records = []
    for principal, role in sorted(service.roles.items()):
        if principal in moving:
            records.append((OP_ROLE, {"Principal": principal, "Role": role}))
    store = service.store
    for contributor in sorted(moving):
        if contributor in store.contributors():
            for segment in store.segments_of(contributor):
                records.append((OP_SEGMENT, segment.to_json()))
        if contributor in service.rules.contributors():
            records.append(
                (OP_RULES, service.rules.snapshot(contributor).to_json())
            )
        places = service.places.get(contributor)
        if places is not None:
            records.append(
                (
                    OP_PLACES,
                    {
                        "Contributor": contributor,
                        "Places": [p.to_json() for p in places.values()],
                    },
                )
            )
        if contributor in service.audit.contributors():
            for record in service.audit.trail_of(contributor):
                records.append((OP_AUDIT, record.to_json()))
    return records


def wal_records_since(service, from_lsn: int, contributors) -> tuple:
    """``(records, last_lsn, complete)``: the filtered WAL tail above ``from_lsn``.

    ``complete`` is False when the WAL cannot prove it covers everything
    above ``from_lsn`` — the store is not durable, or a checkpoint
    truncated the log past the requested base.  The caller must then fall
    back to a full :func:`migration_records` snapshot (idempotent, so
    re-applying over the partial state is safe).
    """
    durability = getattr(service, "durability", None)
    if durability is None or durability.wal is None:
        return [], 0, False
    wal = durability.wal
    wal.commit()  # export only bytes that are truly on disk
    base = durability.checkpoint_lsn
    if from_lsn and from_lsn < base:
        # The frames below `base` were truncated by a checkpoint; the tail
        # alone cannot reach back to from_lsn.
        return [], wal.last_lsn, False
    moving = set(contributors)
    records = []
    for lsn, frame, chain_prev in read_wal_frames(wal.path):
        if lsn <= from_lsn:
            continue
        from repro.storage.wal import decode_frame

        _lsn, _chain, payload = decode_frame(frame, chain_prev=chain_prev)
        obj = jsonutil.loads(payload.decode("utf-8"))
        op = str(obj.get("Op", ""))
        data = obj.get("Data", {})
        if record_concerns(op, data, moving):
            records.append((op, data))
    return records, wal.last_lsn, True


def install_records(service, records) -> dict:
    """Apply migration records on the destination through the recovery path.

    Mirrors :meth:`repro.storage.replication.ReplicaApplier._apply_op`:
    each record is applied via the recovery ``_apply`` (so migration can
    never install anything a crash recovery would refuse) and re-journaled
    into the destination's own WAL, control-plane ops force-synced.  The
    rule-decision and compiled-rule caches are dropped wholesale at the
    end: migrated places and rules move no local cache-key component.

    Returns ``{"Installed": n, "RuleVersions": {contributor: version}}``
    for the contributors the batch touched — the coordinator compares
    those versions against the broker mirror at cutover.
    """
    from repro.storage.recovery import OP_RULES, _apply

    touched: set = set()
    installed = 0
    for op, data in records:
        op = str(op)
        _apply(service, op, dict(data), set(), set())
        if service.durability is not None and service.durability.wal is not None:
            service.durability.wal.append(
                op, dict(data), force_sync=op in _CONTROL_OPS
            )
        owner = _record_contributor(op, data)
        if owner:
            touched.add(owner)
        installed += 1
        if op == OP_RULES:
            contributor = str(data.get("Contributor", ""))
            # Installed rules are the *owner's* current rules: they lift
            # any fail-closed deny a previous partial install left.
            if contributor and contributor in service.fail_closed:
                if service.rules.version_of(contributor):
                    service.fail_closed.discard(contributor)
                    service.network.obs.slo.fail_closed_cleared(
                        service.host, contributor
                    )
    if installed:
        if service.release_cache is not None:
            service.release_cache.invalidate_all("migration")
        compiled = getattr(service, "compiled_rules", None)
        if compiled is not None:
            compiled.invalidate_all("migration")
    return {
        "Installed": installed,
        "RuleVersions": {
            name: service.rules.version_of(name)
            for name in sorted(touched)
            if name in service.rules.contributors()
        },
    }
