"""Atomic, fsync-disciplined file replacement.

The seed persistence layer rewrote snapshot files in place
(``open(path, "w")``), so a crash mid-save left a torn file *and* had
already destroyed the previous good copy.  Every snapshot write now goes
through :func:`atomic_write_bytes`: the bytes land in a temp file in the
same directory, are fsynced, and are renamed over the target (POSIX rename
is atomic), then the directory entry itself is fsynced.  Readers therefore
see either the old complete file or the new complete file, never a tear.

All writes route through an optional :class:`~repro.storage.faults.
StorageFaultPlan` so crash-sweep tests can kill the process at every
intermediate state and prove recovery handles each one.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, Optional

from repro.util import jsonutil


def fsync_directory(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best-effort: some filesystems/platforms refuse O_RDONLY opens of
    directories; the rename itself is still atomic there.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str,
    data: bytes,
    *,
    fsync: bool = True,
    faults=None,
    point: str = "snapshot",
) -> str:
    """Atomically replace ``path`` with ``data``; returns the path.

    Crash points (armable via a fault plan): ``{point}.pre_write`` before
    any byte lands, ``{point}.pre_rename`` with the temp file complete but
    the target untouched, ``{point}.post_rename`` after the swap.  A torn
    rule at ``{point}.write`` leaves a partial temp file behind — which is
    precisely why the write goes to a temp name: the target never tears.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    if faults is not None:
        faults.at_point(f"{point}.pre_write", path=path)
    with open(tmp, "wb") as fh:
        if faults is not None:
            faults.write(f"{point}.write", fh, data, path=path)
        else:
            fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    if faults is not None:
        faults.at_point(f"{point}.pre_rename", path=path)
    os.rename(tmp, path)
    if fsync:
        fsync_directory(directory)
    if faults is not None:
        faults.at_point(f"{point}.post_rename", path=path)
    return path


def atomic_write_jsonl(
    path: str,
    objects: Iterable,
    *,
    fsync: bool = True,
    faults=None,
    point: str = "snapshot",
) -> str:
    """Atomically replace ``path`` with canonical JSON lines."""
    payload = "".join(
        jsonutil.canonical_dumps(obj) + "\n" for obj in objects
    ).encode("utf-8")
    return atomic_write_bytes(path, payload, fsync=fsync, faults=faults, point=point)


def file_sha256(path: str) -> Optional[str]:
    """Hex digest of a file's contents, or None when it does not exist."""
    if not os.path.exists(path):
        return None
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()
