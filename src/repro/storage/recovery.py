"""Crash recovery: replay the WAL over the last good snapshot, fail closed.

Restart sequence for a durable :class:`~repro.server.datastore_service.
DataStoreService` (driven by :class:`~repro.storage.durability.Durability`):

1. read the checkpoint **manifest** (generation marker) and verify the
   SHA-256 of every snapshot file it lists;
2. load the snapshot state, routing undecodable lines to **quarantine**
   (they are copied out and counted, never silently dropped);
3. scan the write-ahead log: truncate a *torn tail* (the append that was
   in flight when the process died — never acknowledged, safe to cut),
   quarantine anything *corrupt* (checksum/chain/LSN breaks);
4. replay WAL records with LSN above the manifest's checkpoint LSN;
5. verify the audit trail's checksum chain;
6. **fail closed for rules**: when corruption touched anything that feeds
   rule semantics, affected contributors get an *empty* rule set with a
   bumped version — the engine's default-deny means nothing flows until
   the owner re-publishes rules, and the bumped version propagates the
   deny state to the broker on the next sync.  A corrupt rule record may
   deny; it must never silently widen sharing.

The fail-closed trigger matrix (conservative by construction):

=====================================  =================================
Damage observed                        Consequence
=====================================  =================================
WAL torn tail                          truncate; benign (unacknowledged)
WAL corrupt frame / chain / LSN break  fail closed for ALL contributors
                                       (later rule updates may be lost)
rules or places snapshot untrusted     fail closed for affected
(checksum mismatch, missing, or any    contributors (places feed rule
line quarantined)                      semantics: a corrupt Deny place
                                       must not lapse)
segments / roles / audit damage        quarantine + alert; cannot widen
audit chain break                      alert (trail shortened/tampered)
=====================================  =================================

One exemption keeps a benign crash from raising a false alarm: rule and
place WAL records carry a contributor's *complete* state (not deltas), so
when the WAL itself is intact, a contributor whose latest rules — and,
if the places snapshot is also untrusted, places — were replayed from it
is fully trusted regardless of the snapshot's condition.  This is the
crash-inside-checkpoint window (snapshots rotated, manifest not yet):
the old manifest's checksums no longer match the new files, but every
changed state is still in the not-yet-reset WAL.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import SensorSafeError, StorageError
from repro.storage.atomic import file_sha256
from repro.storage.wal import WalScan, repair_wal, scan_wal
from repro.util import jsonutil

#: WAL record operations the replayer understands.
OP_SEGMENT = "segment"
OP_SEGMENT_DELETE = "segment_delete"
OP_RULES = "rules"
OP_PLACES = "places"
OP_ROLE = "role"
OP_AUDIT = "audit"
KNOWN_OPS = (OP_SEGMENT, OP_SEGMENT_DELETE, OP_RULES, OP_PLACES, OP_ROLE, OP_AUDIT)

ROLE_CONTRIBUTOR = "contributor"


# ----------------------------------------------------------------------
# On-disk layout (shared with Durability; kept here so durability.py can
# import it without a cycle)
# ----------------------------------------------------------------------


def wal_path(directory: str, host: str) -> str:
    """Path of one host's write-ahead log inside a store directory."""
    return os.path.join(directory, f"{host}.wal")


def manifest_path(directory: str, host: str) -> str:
    """Path of one host's checkpoint manifest inside a store directory."""
    return os.path.join(directory, f"{host}.manifest.json")


def quarantine_dir(directory: str) -> str:
    """Directory where recovery preserves corrupt records and files."""
    return os.path.join(directory, "quarantine")


@dataclass
class RecoveryReport:
    """Everything a restarted store learned about its on-disk state."""

    host: str
    directory: str
    generation: int = 0
    manifest_found: bool = False
    #: LSN the checkpoint manifest covers; the reopened WAL must continue
    #: numbering *above* this, or post-restart appends would replay-filter
    #: as already-checkpointed (see :meth:`Durability.open`).
    checkpoint_lsn: int = 0
    #: snapshot rows loaded per kind (segments/rules/places/roles/audit)
    loaded: dict = field(default_factory=dict)
    wal_records_replayed: int = 0
    wal_records_skipped: int = 0  # at or below the checkpoint LSN
    wal_torn_bytes: int = 0
    wal_corrupt: bool = False
    wal_corrupt_reason: str = ""
    quarantined_records: int = 0
    quarantined_files: list = field(default_factory=list)
    fail_closed: list = field(default_factory=list)
    audit_chain_breaks: dict = field(default_factory=dict)  # contributor -> seqs
    alerts: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when recovery found no damage of any kind."""
        return (
            not self.wal_corrupt
            and self.quarantined_records == 0
            and not self.quarantined_files
            and not self.fail_closed
            and not self.audit_chain_breaks
            and not self.alerts
        )

    def alert(self, message: str) -> None:
        """Record one human-readable recovery warning."""
        self.alerts.append(message)

    def to_json(self) -> dict:
        """JSON form of the report, for the CLI and tests."""
        return {
            "Host": self.host,
            "Directory": self.directory,
            "Generation": self.generation,
            "ManifestFound": self.manifest_found,
            "CheckpointLsn": self.checkpoint_lsn,
            "Loaded": dict(self.loaded),
            "WalReplayed": self.wal_records_replayed,
            "WalSkipped": self.wal_records_skipped,
            "WalTornBytes": self.wal_torn_bytes,
            "WalCorrupt": self.wal_corrupt,
            "WalCorruptReason": self.wal_corrupt_reason,
            "QuarantinedRecords": self.quarantined_records,
            "QuarantinedFiles": list(self.quarantined_files),
            "FailClosed": list(self.fail_closed),
            "AuditChainBreaks": {k: list(v) for k, v in self.audit_chain_breaks.items()},
            "Alerts": list(self.alerts),
            "Clean": self.clean,
        }

    def summary(self) -> str:
        """Multi-line human summary (the ``repro recover`` CLI output)."""
        lines = [
            f"recovery of {self.host!r} from {self.directory}",
            f"  generation {self.generation} "
            f"(manifest {'found' if self.manifest_found else 'absent'}, "
            f"checkpoint lsn {self.checkpoint_lsn})",
            "  loaded: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.loaded.items())),
            f"  wal: {self.wal_records_replayed} replayed, "
            f"{self.wal_records_skipped} skipped, "
            f"{self.wal_torn_bytes} torn bytes truncated",
        ]
        if self.wal_corrupt:
            lines.append(f"  WAL CORRUPT: {self.wal_corrupt_reason}")
        if self.quarantined_records or self.quarantined_files:
            lines.append(
                f"  quarantined: {self.quarantined_records} records, "
                f"files: {', '.join(self.quarantined_files) or '-'}"
            )
        if self.fail_closed:
            lines.append(f"  FAIL-CLOSED (deny-by-default): {', '.join(self.fail_closed)}")
        for contributor, seqs in sorted(self.audit_chain_breaks.items()):
            lines.append(f"  audit chain break for {contributor!r} at seq {seqs}")
        for alert in self.alerts:
            lines.append(f"  ALERT: {alert}")
        if self.clean:
            lines.append("  clean: no damage detected")
        return "\n".join(lines)


class _Quarantine:
    """Copies suspect records/files aside and counts them."""

    def __init__(self, directory: str, report: RecoveryReport):
        self.directory = quarantine_dir(directory)
        self.report = report

    def record(self, source: str, lineno: int, line: str, reason: str) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, os.path.basename(source) + ".bad")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(f"# line {lineno}: {reason}\n{line}\n")
        if path not in self.report.quarantined_files:
            self.report.quarantined_files.append(path)
        self.report.quarantined_records += 1

    def file(self, source: str, reason: str) -> None:
        """Move an untrusted file aside wholesale."""
        if not os.path.exists(source):
            self.report.alert(f"{source}: missing ({reason})")
            return
        os.makedirs(self.directory, exist_ok=True)
        target = os.path.join(self.directory, os.path.basename(source))
        os.replace(source, target)
        self.report.quarantined_files.append(target)
        self.report.alert(f"{source}: quarantined ({reason})")


def _read_manifest(path: str) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            obj = jsonutil.loads(fh.read())
        if not isinstance(obj, dict):
            raise StorageError("manifest is not a JSON object")
        return obj
    except SensorSafeError:
        return {"__corrupt__": True}


def _read_lines_tolerant(path: str, quarantine: _Quarantine) -> tuple:
    """Returns ``(objects, had_corruption)``; bad lines go to quarantine."""
    objects = []
    had_corruption = False
    if not os.path.exists(path):
        return objects, had_corruption
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                objects.append(jsonutil.loads(line))
            except SensorSafeError as exc:
                quarantine.record(path, lineno, line, str(exc))
                had_corruption = True
    return objects, had_corruption


def recover_service(service, directory: Optional[str] = None, *, obs=None) -> RecoveryReport:
    """Restore a DataStoreService from disk, tolerating and reporting damage.

    The strict counterpart is
    :func:`repro.server.persistence.load_service_state`, which raises on
    the first corrupt line; this function instead quarantines, replays the
    WAL, and fails closed for rules per the module-docstring matrix.
    """
    from repro.rules.rulestore import RuleSetSnapshot
    from repro.server.audit import AuditRecord
    from repro.server.persistence import _path
    from repro.util.geo import LabeledPlace

    directory = directory or service.store.db.directory
    if directory is None:
        raise StorageError(
            f"store {service.host!r} has no persistence directory configured"
        )
    host = service.host
    report = RecoveryReport(host=host, directory=directory)
    quarantine = _Quarantine(directory, report)
    # Three untrust flags feed the fail-closed sweep at the end.  They are
    # kept separate because the WAL-replay exemption (module docstring)
    # needs to know *which* side is damaged: an intact WAL can vouch for a
    # contributor against snapshot damage, but not the other way around.
    rules_untrusted = False  # rules snapshot (or manifest) is suspect
    places_untrusted = False  # places snapshot (or manifest) is suspect
    wal_untrusted = False  # the WAL itself is corrupt or unreadable

    # ------------------------------------------------------------------
    # 1. Manifest: the generation marker written by the last checkpoint.
    # ------------------------------------------------------------------
    manifest = _read_manifest(manifest_path(directory, host))
    checkpoint_lsn = 0
    if manifest is not None and "__corrupt__" in manifest:
        report.alert("checkpoint manifest is corrupt; treating snapshots as untrusted")
        rules_untrusted = True
        places_untrusted = True
        manifest = None
    if manifest is not None:
        report.manifest_found = True
        report.generation = int(manifest.get("Generation", 0))
        checkpoint_lsn = int(manifest.get("CheckpointLsn", 0))
        report.checkpoint_lsn = checkpoint_lsn
        for name, expected in sorted(dict(manifest.get("Files", {})).items()):
            path = os.path.join(directory, name)
            actual = file_sha256(path)
            if actual == expected:
                continue
            reason = "checksum mismatch vs manifest" if actual else "listed in manifest"
            kind = name.rsplit(".", 2)[-2] if "." in name else name
            if kind in ("rules", "places"):
                # Feeds rule semantics: a JSON-parseable bit flip (a place
                # boundary, a consumer name) is undetectable per line, so
                # the whole file is untrusted and contributors fail closed
                # unless the intact WAL replays their state below.
                if kind == "rules":
                    rules_untrusted = True
                else:
                    places_untrusted = True
                quarantine.file(path, reason)
            else:
                # Data-plane damage cannot widen sharing; load what still
                # parses (bad lines quarantine below, audit tampering is
                # caught by the chain verification) and alert.
                report.alert(f"{path}: {reason}")

    # ------------------------------------------------------------------
    # 2. Snapshot state, loaded tolerantly.
    # ------------------------------------------------------------------
    def on_corrupt_segment(table, path, lineno, line, exc):
        quarantine.record(path, lineno, line, str(exc))
        report.alert(f"segment record lost to corruption ({path}:{lineno})")

    counts = {"segments": service.store.load(on_corrupt=on_corrupt_segment)}

    rules_objs, bad = _read_lines_tolerant(_path(directory, host, "rules"), quarantine)
    rules_untrusted = rules_untrusted or bad
    counts["rules"] = 0
    for obj in rules_objs:
        try:
            snapshot = RuleSetSnapshot.from_json(obj)
        except SensorSafeError as exc:
            quarantine.record(_path(directory, host, "rules"), 0,
                              jsonutil.canonical_dumps(obj), str(exc))
            rules_untrusted = True
            continue
        service.rules.register(snapshot.contributor)
        service.rules.restore(snapshot.contributor, snapshot.rules, snapshot.version)
        counts["rules"] += len(snapshot.rules)

    places_objs, bad = _read_lines_tolerant(_path(directory, host, "places"), quarantine)
    places_untrusted = places_untrusted or bad  # places feed rule semantics
    counts["places"] = 0
    for obj in places_objs:
        try:
            places = {
                place.label: place
                for place in (LabeledPlace.from_json(p) for p in obj.get("Places", []))
            }
            service.places[str(obj["Contributor"])] = places
        except (SensorSafeError, KeyError, TypeError) as exc:
            quarantine.record(_path(directory, host, "places"), 0,
                              jsonutil.canonical_dumps(obj), str(exc))
            places_untrusted = True
            continue
        counts["places"] += len(places)

    # The fail-closed exemption (module docstring) is granted ONLY by WAL
    # replay: a contributor lands in these sets when the intact log carries
    # their complete state.  Snapshot loads never populate them — a
    # checksum-unverifiable snapshot (corrupt or absent manifest) can parse
    # cleanly yet carry a flipped bit that widens sharing.
    wal_clean_rules: set = set()
    wal_clean_places: set = set()

    roles_objs, bad = _read_lines_tolerant(_path(directory, host, "roles"), quarantine)
    if bad:
        report.alert("roles snapshot had corrupt lines (quarantined)")
    counts["roles"] = 0
    for obj in roles_objs:
        try:
            service.roles[str(obj["Principal"])] = str(obj["Role"])
        except (KeyError, TypeError) as exc:
            quarantine.record(_path(directory, host, "roles"), 0,
                              jsonutil.canonical_dumps(obj), str(exc))
            continue
        counts["roles"] += 1

    audit_objs, bad = _read_lines_tolerant(_path(directory, host, "audit"), quarantine)
    if bad:
        report.alert("audit snapshot had corrupt lines (quarantined); trail has gaps")
    audit_records = []
    for obj in audit_objs:
        try:
            audit_records.append(AuditRecord.from_json(obj))
        except (SensorSafeError, KeyError, TypeError, ValueError) as exc:
            quarantine.record(_path(directory, host, "audit"), 0,
                              jsonutil.canonical_dumps(obj), str(exc))
    counts["audit"] = service.audit.restore(audit_records)
    report.loaded = counts

    # ------------------------------------------------------------------
    # 3 + 4. WAL: repair, then replay past the checkpoint LSN.
    # ------------------------------------------------------------------
    scan = scan_wal(wal_path(directory, host))
    report.wal_torn_bytes = scan.torn_bytes
    if scan.corrupt:
        report.wal_corrupt = True
        report.wal_corrupt_reason = scan.corrupt_reason
        wal_untrusted = True  # rule updates after the break are lost
        report.alert(f"WAL corrupt at offset {scan.corrupt_offset}: {scan.corrupt_reason}")
    qpath = repair_wal(scan, quarantine_dir=quarantine_dir(directory))
    if qpath is not None:
        report.quarantined_files.append(qpath)
        report.quarantined_records += 1
    for lsn, op, data in scan.records:
        if lsn <= checkpoint_lsn:
            report.wal_records_skipped += 1
            continue
        try:
            _apply(
                service,
                op,
                data,
                wal_clean_rules,
                wal_clean_places,
                rules_trusted=not rules_untrusted,
            )
        except SensorSafeError as exc:
            quarantine.record(wal_path(directory, host), lsn,
                              jsonutil.canonical_dumps({"Op": op, "Data": data}),
                              str(exc))
            if op in (OP_RULES, OP_PLACES) or op not in KNOWN_OPS:
                wal_untrusted = True
            report.alert(f"WAL record lsn={lsn} op={op!r} failed to apply: {exc}")
            continue
        report.wal_records_replayed += 1

    # ------------------------------------------------------------------
    # 5. Audit chain verification.
    # ------------------------------------------------------------------
    for contributor in service.audit.contributors():
        breaks = service.audit.verify_chain(contributor)
        if breaks:
            report.audit_chain_breaks[contributor] = breaks
            report.alert(
                f"audit trail for {contributor!r} breaks its checksum chain at "
                f"seq {breaks} — records were lost or altered"
            )

    # ------------------------------------------------------------------
    # 6. Fail closed for rules.
    # ------------------------------------------------------------------
    if rules_untrusted or places_untrusted or wal_untrusted:
        for contributor in _known_contributors(service):
            if (
                not wal_untrusted
                and (not rules_untrusted or contributor in wal_clean_rules)
                and (not places_untrusted or contributor in wal_clean_places)
            ):
                # Their complete rule (and, where needed, place) state was
                # replayed from the intact WAL — the snapshot damage is a
                # crash-inside-checkpoint artifact, not lost semantics.
                continue
            version = service.rules.version_of(contributor)
            service.rules.register(contributor)
            service.rules.restore(contributor, [], version + 1)
            report.fail_closed.append(contributor)
        report.fail_closed.sort()
        if report.fail_closed:
            report.alert(
                "rule state untrusted: denying by default for "
                + ", ".join(report.fail_closed)
                + " until rules are re-published"
            )

    # Fail closed on the cache too: every decision cached before this
    # recovery was made under a rule/data state this process can no longer
    # vouch for.  The rules-version epoch already moved (restore bumps it),
    # but recovery also rewrites places and fail-closed state directly, so
    # the cache is emptied wholesale rather than reasoned about.
    release_cache = getattr(service, "release_cache", None)
    if release_cache is not None:
        release_cache.invalidate_all("recovery")
    # Same argument for compiled rule artifacts: recovery rewrote places
    # and fail-closed state out from under any cached compilation.
    compiled_rules = getattr(service, "compiled_rules", None)
    if compiled_rules is not None:
        compiled_rules.invalidate_all("recovery")

    if obs is not None and getattr(obs, "enabled", False):
        m = obs.metrics
        m.counter("recovery_runs_total").inc()
        m.counter("recovery_replayed_total").inc(report.wal_records_replayed)
        m.counter("records_quarantined_total").inc(report.quarantined_records)
        m.counter("fail_closed_total").inc(len(report.fail_closed))
        m.counter("recovery_torn_bytes_total").inc(report.wal_torn_bytes)
    return report


def _known_contributors(service) -> list:
    """Every contributor this store has any trace of, from every source."""
    names = set(service.rules.contributors())
    names.update(service.places)
    names.update(service.store.contributors())
    names.update(service.audit.contributors())
    names.update(
        principal
        for principal, role in service.roles.items()
        if role == ROLE_CONTRIBUTOR
    )
    return sorted(names)


def _apply(
    service,
    op: str,
    data: dict,
    clean_rules: set,
    clean_places: set,
    *,
    rules_trusted: bool = True,
) -> None:
    """Apply one replayed WAL record to live service state.

    ``rules_trusted=False`` means the rules snapshot could not be
    verified; its version numbers are then as suspect as its rules, so a
    replayed rule record overwrites unconditionally (WAL records carry
    complete state and replay in LSN order, so the last one wins) instead
    of letting a possibly bit-flipped snapshot version win the comparison.
    """
    from repro.datastore.wavesegment import WaveSegment
    from repro.rules.rulestore import RuleSetSnapshot
    from repro.server.audit import AuditRecord
    from repro.util.geo import LabeledPlace

    if op == OP_SEGMENT:
        service.store.restore_segment(WaveSegment.from_json(data))
    elif op == OP_SEGMENT_DELETE:
        service.store.remove_segment(str(data["SegmentId"]))
    elif op == OP_RULES:
        snapshot = RuleSetSnapshot.from_json(data)
        service.rules.register(snapshot.contributor)
        if (
            not rules_trusted
            or snapshot.version >= service.rules.version_of(snapshot.contributor)
        ):
            service.rules.restore(snapshot.contributor, snapshot.rules, snapshot.version)
        clean_rules.add(snapshot.contributor)
    elif op == OP_PLACES:
        contributor = str(data["Contributor"])
        service.places[contributor] = {
            place.label: place
            for place in (LabeledPlace.from_json(p) for p in data.get("Places", []))
        }
        clean_places.add(contributor)
    elif op == OP_ROLE:
        service.roles[str(data["Principal"])] = str(data["Role"])
    elif op == OP_AUDIT:
        service.audit.restore([AuditRecord.from_json(data)])
    else:
        raise StorageError(f"unknown WAL op {op!r} (written by a newer version?)")
