"""``python -m repro recover`` — inspect and repair a store's durable state.

Runs the same recovery path a durable service runs at startup
(:func:`repro.storage.recovery.recover_service`) against an on-disk
directory, prints the report, and exits non-zero when damage was found
(``--strict``) so operators and CI can gate on it.  ``--checkpoint``
additionally writes a fresh snapshot + manifest and resets the WAL, so the
repaired state becomes the new baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro.util import jsonutil


def main(argv: list) -> int:
    """Entry point for ``python -m repro recover``; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro recover",
        description="Recover a data store's durable state from disk.",
    )
    parser.add_argument("--dir", required=True, help="persistence directory")
    parser.add_argument("--host", required=True, help="store host name (file prefix)")
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 unless the recovery was completely clean",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh snapshot + manifest after recovery (resets the WAL)",
    )
    args = parser.parse_args(argv)

    # Imported lazily: the CLI must not drag the whole server stack into
    # every `import repro.storage`.
    from repro.net.transport import Network
    from repro.server.datastore_service import DataStoreService

    service = DataStoreService(
        args.host, Network(), directory=args.dir, durable=True
    )
    report = service.recovery_report
    if args.checkpoint:
        service.checkpoint()
    if args.json:
        out = report.to_json()
        out["Checkpointed"] = bool(args.checkpoint)
        print(jsonutil.canonical_dumps(out))
    else:
        print(report.summary())
        if args.checkpoint:
            print(f"  checkpointed: generation {service.durability.generation}")
    if args.strict and not report.clean:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
