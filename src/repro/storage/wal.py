"""Checksummed, length-prefixed, fsync-on-commit write-ahead log.

Every store mutation (segment upload/merge, rule set/delete, places,
roles, audit appends) is framed and appended here *before* it is
acknowledged; on restart the log replays over the last good snapshot
(:mod:`repro.storage.recovery`).  Losing a privacy rule would silently
widen sharing, so the frame format is built to make every failure mode
*detectable*:

``[length u32][lsn u32][chain u32][payload_crc u32][header_crc u32][payload]``

* **length / payload_crc** — a record is trusted only when its payload is
  complete and its CRC-32 matches;
* **header_crc** (CRC-32 of the first 16 header bytes) — distinguishes a
  *torn tail* from *media corruption*: a crash mid-append tears the frame
  as a byte prefix, so either fewer than 20 header bytes survive or a
  valid header precedes a short payload.  A full header that fails its own
  CRC can only be a flipped bit — corruption, never a benign tear;
* **chain** — CRC-32 of the payload seeded with the previous frame's
  chain value.  A frame deleted or reordered mid-log breaks the chain of
  every later frame, so a shorter, plausible-looking log cannot pass as
  complete (the audit-trail integrity requirement);
* **lsn** — monotonically increasing log sequence number; the checkpoint
  manifest records the LSN it covers, making replay idempotent when a
  crash lands between snapshot commit and log reset.

Scan policy (:func:`scan_wal`): a torn tail is the expected crash artifact
— the in-flight append was never acknowledged — and is truncated away by
:func:`repair_wal`.  Anything else (bad header CRC, bad payload CRC, chain
or LSN break) marks the frame *and everything after it* as suspect; those
bytes are quarantined, never silently dropped, and recovery fails closed
for privacy rules.

Sync policies: ``"always"`` fsyncs every append (every ack is durable),
``"group"`` fsyncs every :data:`GROUP_COMMIT_APPENDS` appends or on
:meth:`~WriteAheadLog.commit` (bounded loss window for bulk data; callers
force-sync control-plane records), ``"never"`` leaves flushing to the OS
(benchmark baseline only).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import CorruptRecordError, SensorSafeError, StorageError
from repro.util import jsonutil

_HEADER = struct.Struct("<IIIII")  # length, lsn, chain, payload_crc, header_crc
HEADER_SIZE = _HEADER.size
#: No legitimate frame approaches this; a "length" beyond it is corruption.
MAX_FRAME_BYTES = 1 << 28
#: "group" sync: fsync after this many appends even without a commit().
GROUP_COMMIT_APPENDS = 64

SYNC_ALWAYS = "always"
SYNC_GROUP = "group"
SYNC_NEVER = "never"
_SYNC_MODES = (SYNC_ALWAYS, SYNC_GROUP, SYNC_NEVER)


def _chain(payload: bytes, prev: int) -> int:
    return zlib.crc32(payload, prev) & 0xFFFFFFFF


def encode_frame(lsn: int, chain_prev: int, payload: bytes) -> tuple:
    """Returns ``(frame_bytes, new_chain)`` for one payload."""
    chain = _chain(payload, chain_prev)
    head = struct.pack("<IIII", len(payload), lsn, chain, zlib.crc32(payload) & 0xFFFFFFFF)
    header = head + struct.pack("<I", zlib.crc32(head) & 0xFFFFFFFF)
    return header + payload, chain


def chain_crc(payload: bytes, prev: int) -> int:
    """The chain value one payload produces on top of ``prev`` (public form)."""
    return _chain(payload, prev)


def decode_frame(frame: bytes, *, chain_prev: Optional[int] = None) -> tuple:
    """Verify one framed record and return ``(lsn, chain, payload)``.

    The exact-length inverse of :func:`encode_frame`, used by replication
    to validate frames shipped over the network with the same rigor the
    on-disk scanner applies: header CRC, plausible length, payload CRC —
    and, when ``chain_prev`` is given, that the frame's chain value binds
    the payload to that history.  Raises
    :class:`~repro.exceptions.CorruptRecordError` on any mismatch; a frame
    that does not verify must never be applied.
    """
    if len(frame) < HEADER_SIZE:
        raise CorruptRecordError(f"frame shorter than its header ({len(frame)} bytes)")
    length, lsn, chain, payload_crc, header_crc = _HEADER.unpack_from(frame, 0)
    if zlib.crc32(frame[:16]) & 0xFFFFFFFF != header_crc:
        raise CorruptRecordError("frame header checksum mismatch")
    if length > MAX_FRAME_BYTES:
        raise CorruptRecordError(f"implausible frame length {length}")
    if len(frame) != HEADER_SIZE + length:
        raise CorruptRecordError(
            f"frame length mismatch: header says {length}, got {len(frame) - HEADER_SIZE}"
        )
    payload = frame[HEADER_SIZE:]
    if zlib.crc32(payload) & 0xFFFFFFFF != payload_crc:
        raise CorruptRecordError("frame payload checksum mismatch")
    if chain_prev is not None and chain != _chain(payload, chain_prev):
        raise CorruptRecordError("frame chain mismatch (frames missing or reordered)")
    return lsn, chain, payload


@dataclass
class WalScan:
    """Result of reading a WAL file back: records plus damage assessment."""

    path: str
    #: ``(lsn, op, data)`` for every intact, chain-consistent frame.
    records: list = field(default_factory=list)
    chain: int = 0  # chain value after the last good frame
    next_lsn: int = 1
    good_bytes: int = 0  # file offset after the last good frame
    torn_bytes: int = 0  # benign trailing bytes from an in-flight append
    corrupt_offset: Optional[int] = None  # first untrustworthy byte, if any
    corrupt_reason: str = ""

    @property
    def torn(self) -> bool:
        """True when the file ends in a half-written (torn) record."""
        return self.torn_bytes > 0

    @property
    def corrupt(self) -> bool:
        """True when a checksum, header, or chain mismatch was found."""
        return self.corrupt_offset is not None


def scan_wal(path: str) -> WalScan:
    """Parse a WAL file, classifying any damage; never raises on bad bytes."""
    scan = WalScan(path=path)
    if not os.path.exists(path):
        return scan
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    chain_prev = 0
    last_lsn = 0
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < HEADER_SIZE:
            scan.torn_bytes = remaining  # tear landed inside the header
            break
        length, lsn, chain, payload_crc, header_crc = _HEADER.unpack_from(data, offset)
        if zlib.crc32(data[offset : offset + 16]) & 0xFFFFFFFF != header_crc:
            scan.corrupt_offset = offset
            scan.corrupt_reason = "header checksum mismatch"
            break
        if length > MAX_FRAME_BYTES:
            scan.corrupt_offset = offset
            scan.corrupt_reason = f"implausible frame length {length}"
            break
        if remaining < HEADER_SIZE + length:
            scan.torn_bytes = remaining  # valid header, short payload: torn
            break
        payload = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != payload_crc:
            scan.corrupt_offset = offset
            scan.corrupt_reason = "payload checksum mismatch"
            break
        if chain != _chain(payload, chain_prev):
            scan.corrupt_offset = offset
            scan.corrupt_reason = "chain break (frames missing or reordered)"
            break
        if lsn <= last_lsn:
            scan.corrupt_offset = offset
            scan.corrupt_reason = f"LSN not monotonic ({lsn} after {last_lsn})"
            break
        try:
            obj = jsonutil.loads(payload.decode("utf-8"))
            op = str(obj["Op"])
            body = obj.get("Data", {})
        except (SensorSafeError, UnicodeDecodeError, KeyError, TypeError) as exc:
            scan.corrupt_offset = offset
            scan.corrupt_reason = f"undecodable payload: {exc}"
            break
        scan.records.append((lsn, op, body))
        chain_prev = chain
        last_lsn = lsn
        offset += HEADER_SIZE + length
        scan.good_bytes = offset
        scan.chain = chain_prev
        scan.next_lsn = last_lsn + 1
    return scan


def repair_wal(scan: WalScan, *, quarantine_dir: Optional[str] = None) -> Optional[str]:
    """Truncate a damaged WAL to its last good frame.

    A torn tail is simply cut (the append was never acknowledged).  Bytes
    from a *corrupt* frame onward are copied into ``quarantine_dir`` first
    — evidence is preserved, never silently dropped.  Returns the
    quarantine file path when one was written.
    """
    if not (scan.torn or scan.corrupt):
        return None
    quarantine_path = None
    if scan.corrupt and quarantine_dir is not None:
        os.makedirs(quarantine_dir, exist_ok=True)
        name = os.path.basename(scan.path)
        quarantine_path = os.path.join(
            quarantine_dir, f"{name}.offset{scan.corrupt_offset}.bin"
        )
        with open(scan.path, "rb") as fh:
            fh.seek(scan.corrupt_offset)
            suspect = fh.read()
        with open(quarantine_path, "wb") as fh:
            fh.write(suspect)
            fh.flush()
            os.fsync(fh.fileno())
    with open(scan.path, "r+b") as fh:
        fh.truncate(scan.good_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    return quarantine_path


class WriteAheadLog:
    """Append-only durable log of store mutations.

    Open over an *already repaired* file (see :func:`scan_wal` /
    :func:`repair_wal`; the recovery path does this) — the constructor
    refuses a damaged log rather than appending garbage after garbage.
    """

    def __init__(
        self,
        path: str,
        *,
        sync: str = SYNC_ALWAYS,
        faults=None,
        resume: Optional[WalScan] = None,
    ):
        if sync not in _SYNC_MODES:
            raise StorageError(f"unknown WAL sync policy {sync!r}; use {_SYNC_MODES}")
        self.path = path
        self.sync = sync
        self.faults = faults
        if resume is None:
            resume = scan_wal(path)
            if resume.corrupt or resume.torn:
                raise CorruptRecordError(
                    f"WAL {path!r} is damaged ({resume.corrupt_reason or 'torn tail'}); "
                    "run recovery before appending"
                )
        self._chain = resume.chain
        self._next_lsn = resume.next_lsn
        self._last_lsn = resume.next_lsn - 1
        self._unsynced = 0
        self.appended = 0  # appends through this handle (not the file total)
        #: Observers fired after every successful append with
        #: ``(lsn, frame_bytes, chain_prev)`` — the exact framed bytes that
        #: landed on disk plus the chain value they extend.  Replication
        #: (:mod:`repro.storage.replication`) tails the log through this
        #: hook; replay and recovery never fire it.
        self.on_append: list = []
        #: Observers fired after :meth:`reset` (checkpoint): the chain
        #: restarts at zero for the new log generation, and anyone shipping
        #: frames downstream must mark the generation boundary.
        self.on_reset: list = []
        #: Wall-clock seconds spent inside append()/commit() — the journal's
        #: entire cost on the request path (serialize, frame, write, fsync).
        #: Benchmark C10 gates on this share of ingest time: accounting
        #: measured *inside* one run is immune to host drift between runs.
        self.io_seconds = 0.0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "ab")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def chain(self) -> int:
        """The running CRC chain value binding the next record to history."""
        return self._chain

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._last_lsn

    def size_bytes(self) -> int:
        """Current on-disk size of the log file in bytes."""
        return os.fstat(self._fh.fileno()).st_size

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, op: str, data: dict, *, force_sync: bool = False) -> int:
        """Frame and append one record; returns its LSN.

        ``force_sync=True`` makes this append durable before returning
        regardless of the group policy — the control-plane records (rules,
        roles, places, audit) always pass it, so an acknowledged rule
        change is on disk even when bulk segment data rides group commit.
        """
        started = time.perf_counter()
        payload = jsonutil.canonical_dumps({"Op": op, "Data": data}).encode("utf-8")
        chain_prev = self._chain
        frame, chain = encode_frame(self._next_lsn, chain_prev, payload)
        if self.faults is not None:
            self.faults.at_point("wal.append.pre_write", path=self.path)
            self.faults.write("wal.append.write", self._fh, frame, path=self.path)
        else:
            self._fh.write(frame)
        self._fh.flush()
        self._unsynced += 1
        if self._should_sync(force_sync):
            if self.faults is not None:
                self.faults.at_point("wal.append.pre_fsync", path=self.path)
            os.fsync(self._fh.fileno())
            self._unsynced = 0
            if self.faults is not None:
                self.faults.at_point("wal.append.post_fsync", path=self.path)
        lsn = self._next_lsn
        self._chain = chain
        self._last_lsn = lsn
        self._next_lsn += 1
        self.appended += 1
        self.io_seconds += time.perf_counter() - started
        for hook in self.on_append:
            hook(lsn, frame, chain_prev)
        return lsn

    def _should_sync(self, force: bool) -> bool:
        if self.sync == SYNC_NEVER:
            return False
        if self.sync == SYNC_ALWAYS or force:
            return True
        return self._unsynced >= GROUP_COMMIT_APPENDS

    def commit(self) -> None:
        """Make everything appended so far durable (group-commit barrier)."""
        if self.sync == SYNC_NEVER or self._unsynced == 0:
            return
        started = time.perf_counter()
        if self.faults is not None:
            self.faults.at_point("wal.commit.pre_fsync", path=self.path)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0
        self.io_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Empty the log after a checkpoint; LSNs keep counting upward.

        The chain restarts at zero for the new log generation — cross-
        generation continuity is the checkpoint manifest's job (it records
        the LSN and chain value it covers).
        """
        self._fh.truncate(0)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.seek(0)
        self._chain = 0
        self._unsynced = 0
        for hook in self.on_reset:
            hook()

    def close(self) -> None:
        """Close the underlying file handle."""
        try:
            self.commit()
        finally:
            self._fh.close()
