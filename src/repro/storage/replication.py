"""Per-contributor store replication: WAL frame shipping and replay.

The write-ahead log (:mod:`repro.storage.wal`) made a single store
crash-*recoverable*; this module makes a store crash-*survivable* by
shipping the exact framed bytes the WAL appends to one or more replica
stores over the ordinary :mod:`repro.net` transport:

* :class:`WalShipper` runs on the **primary**.  It tails the log through
  :attr:`WriteAheadLog.on_append` (plus a :meth:`~WalShipper.backfill`
  scan of the current on-disk generation, so frames appended before the
  shipper existed are not lost), buffers frames until every replica has
  acknowledged them, and POSTs batches to ``/api/replicate/append``;
* :class:`ReplicaApplier` runs on each **replica**.  Every received frame
  is verified with the same rigor the on-disk scanner applies — header
  CRC, payload CRC, chain binding to the previous frame, strict LSN
  continuity (a stream with no applied history must start at lsn 1) —
  and only then replayed through the *existing* recovery path
  (:func:`repro.storage.recovery._apply`), so replication cannot
  apply anything a crash recovery would have refused.

Checkpoints truncate the WAL, so once a primary has checkpointed its
frames no longer reach back to lsn 1.  A resync then leads with a
**snapshot bootstrap** (:func:`bootstrap_records`): the primary's full
durable state as WAL-shaped ``(op, data)`` records, applied through the
same recovery path, after which the applier resumes frame continuity at
``BaseLsn + 1``.  A resync that names a base but carries no bootstrap is
rejected — a joiner must never be marked caught-up with a silent hole in
its history.

Acknowledgement modes:

* ``"async"`` — frames ship opportunistically (after each mutating
  request and on broker heartbeats); a write is acknowledged to the
  client before replicas have it, so a failover can lose the tail;
* ``"semi-sync"`` — a mutating request is only acknowledged once at
  least ``min_acks`` replicas hold every frame it produced; otherwise
  the request fails with :class:`~repro.exceptions.ReplicationError`.
  Availability is traded for durability: committed-write loss across a
  failover is zero by construction (benchmark C12 asserts it).

Epoch fencing: every ship carries the primary's **store epoch**.  The
broker bumps the epoch when it promotes a replica, so a demoted primary
that never heard the news has its ships rejected with a 409
(:class:`~repro.exceptions.StaleEpochError`) — at which point the
shipper demotes its own service rather than forking history.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import (
    ConflictError,
    CorruptRecordError,
    ReplicationError,
    ServiceError,
    StaleEpochError,
    StorageError,
    TransportError,
)
from repro.storage.wal import HEADER_SIZE, MAX_FRAME_BYTES, _HEADER, decode_frame
from repro.util import jsonutil

MODE_ASYNC = "async"
MODE_SEMI_SYNC = "semi-sync"
_MODES = (MODE_ASYNC, MODE_SEMI_SYNC)

#: WAL ops that carry rule semantics or the audit trail; a replica
#: re-journals these with ``force_sync`` exactly like the primary did.
_CONTROL_OPS = ("rules", "places", "role", "audit")

#: Consecutive failed ships before a replica is declared *lagging*: it
#: stops pinning the primary's in-memory frame buffer and is converged by
#: a full resync (disk backfill + snapshot bootstrap) when it returns.
LAGGING_AFTER_FAILURES = 3


def read_wal_frames(path: str) -> list:
    """Extract ``(lsn, frame_bytes, chain_prev)`` for every intact frame.

    The raw-bytes sibling of :func:`repro.storage.wal.scan_wal`: frames
    are CRC-verified and chain-checked while scanning, and extraction
    stops at the first torn or suspect byte — a shipper must never ship
    bytes it cannot vouch for.
    """
    frames = []
    if not os.path.exists(path):
        return frames
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    chain_prev = 0
    while offset + HEADER_SIZE <= len(data):
        length = _HEADER.unpack_from(data, offset)[0]
        end = offset + HEADER_SIZE + length
        if length > MAX_FRAME_BYTES or end > len(data):
            break  # torn tail or implausible header: stop shipping here
        frame = data[offset:end]
        try:
            lsn, chain, _payload = decode_frame(frame, chain_prev=chain_prev)
        except CorruptRecordError:
            break
        frames.append((lsn, frame, chain_prev))
        chain_prev = chain
        offset = end
    return frames


def bootstrap_records(service) -> list:
    """A primary's full durable state as ``(op, data)`` WAL-shaped records.

    A replica that attaches — or returns — after the primary has
    checkpointed cannot be converged from WAL frames alone: the checkpoint
    truncated every earlier generation.  This dump carries everything the
    checkpoint covers, shaped exactly like WAL payloads, so the replica
    installs it through the same recovery apply path it uses for shipped
    frames.  Every op is idempotent or last-wins (rule snapshots carry a
    version and replay monotonically; audit restore dedupes per seq), so
    replaying the current generation's frames *over* the bootstrap
    converges on the primary's live state.

    Integrity rides the authenticated transport: these records come from
    live state, not disk, so the frame CRC machinery has nothing on disk
    to vouch for — the same trust as any other broker- or primary-keyed
    API call.
    """
    from repro.storage.recovery import (
        OP_AUDIT,
        OP_PLACES,
        OP_ROLE,
        OP_RULES,
        OP_SEGMENT,
    )

    records = []
    for principal, role in sorted(service.roles.items()):
        records.append((OP_ROLE, {"Principal": principal, "Role": role}))
    store = service.store
    for contributor in store.contributors():
        for segment in store.segments_of(contributor):
            records.append((OP_SEGMENT, segment.to_json()))
    for contributor in service.rules.contributors():
        records.append((OP_RULES, service.rules.snapshot(contributor).to_json()))
    for contributor, places in sorted(service.places.items()):
        records.append(
            (
                OP_PLACES,
                {
                    "Contributor": contributor,
                    "Places": [p.to_json() for p in places.values()],
                },
            )
        )
    for contributor in service.audit.contributors():
        for record in service.audit.trail_of(contributor):
            records.append((OP_AUDIT, record.to_json()))
    return records


@dataclass
class ReplicaLink:
    """The primary's view of one replica: transport handle plus progress."""

    host: str
    client: object  # HttpClient bound to the primary's identity
    acked_lsn: int = 0
    #: next ship must tell the replica to reset continuity and replay
    #: idempotently (new link, or a post-promotion stream change).
    resync: bool = True
    alive: bool = True
    #: consecutive failed ships; at :data:`LAGGING_AFTER_FAILURES` the
    #: link flips to resync-on-return and stops pinning the frame buffer.
    fails: int = 0
    last_error: str = ""


@dataclass
class _BufferedFrame:
    """One framed WAL record waiting for replica acknowledgement."""

    lsn: int
    frame: bytes
    chain_prev: int

    def to_json(self) -> dict:
        """Wire form of the frame (bytes hex-encoded for JSON transport)."""
        return {"Lsn": self.lsn, "ChainPrev": self.chain_prev, "Frame": self.frame.hex()}


class WalShipper:
    """Ships a primary's WAL frames to its replicas; tracks their progress.

    Created by :meth:`DataStoreService.enable_replication`; requires the
    service to be durable (the WAL *is* the replication stream).
    """

    def __init__(self, service, *, mode: str = MODE_ASYNC, min_acks: int = 1):
        if mode not in _MODES:
            raise StorageError(f"unknown replication mode {mode!r}; use {_MODES}")
        if service.durability is None or service.durability.wal is None:
            raise StorageError(
                f"store {service.host!r} is not durable; replication ships the WAL"
            )
        self.service = service
        self.mode = mode
        self.min_acks = max(1, int(min_acks))
        self.links: dict = {}
        self._buffer: list = []
        self.fenced = False  # a replica rejected our epoch: we were demoted
        #: LSN the current WAL generation starts *above* (the last
        #: checkpoint's LSN; 0 when the log has never been truncated).  A
        #: resync can be served from frames alone only when they reach
        #: back to ``_base_lsn + 1 == 1``; otherwise the ship leads with a
        #: snapshot bootstrap covering everything at or below the base.
        self._base_lsn = service.durability.checkpoint_lsn
        service.durability.wal.on_append.append(self._on_append)
        service.durability.wal.on_reset.append(self._on_reset)
        obs = service.network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            host = service.host
            self._c_ships = m.counter("replication_ships_total", store=host)
            self._c_frames = m.counter("replication_frames_shipped_total", store=host)
            self._c_failures = m.counter("replication_ship_failures_total", store=host)
            self._c_fenced = m.counter("replication_fenced_total", store=host)
            self._c_rejected = m.counter("replication_writes_rejected_total", store=host)
        else:
            self._c_ships = None
            self._c_frames = None
            self._c_failures = None
            self._c_fenced = None
            self._c_rejected = None

    # ------------------------------------------------------------------
    # WAL tailing
    # ------------------------------------------------------------------

    def _on_append(self, lsn: int, frame: bytes, chain_prev: int) -> None:
        self._buffer.append(_BufferedFrame(lsn, frame, chain_prev))

    def _on_reset(self) -> None:
        # A checkpoint truncated the log: the generation now starts above
        # the checkpoint LSN, so any later resync needs the snapshot
        # bootstrap — frames alone no longer reach back to lsn 1.
        self._base_lsn = self.service.durability.wal.last_lsn

    def _cover_generation(self) -> None:
        """Make the buffer span the whole current WAL generation.

        A resyncing link replays from the generation start; after trims on
        behalf of caught-up links (or a buffer cleared while every link
        was down) those frames exist only on disk, so re-seed them via
        :meth:`backfill` before building the resync batch.
        """
        wal = self.service.durability.wal
        if wal.last_lsn <= self._base_lsn:
            return  # generation is empty: nothing to cover
        if self._buffer and self._buffer[0].lsn <= self._base_lsn + 1:
            return  # already reaches the generation start
        self.backfill()

    def backfill(self) -> int:
        """Seed the buffer from the on-disk WAL (frames predating us).

        Also the post-promotion resync source: a freshly promoted primary
        backfills its whole current generation and ships it with
        ``Resync`` semantics so surviving replicas converge on *its*
        history, not the dead primary's.  Returns the frames seeded.
        """
        wal = self.service.durability.wal
        wal.commit()  # ship only bytes that are truly on disk
        have = {bf.lsn for bf in self._buffer}
        frames = [
            _BufferedFrame(lsn, frame, chain_prev)
            for lsn, frame, chain_prev in read_wal_frames(wal.path)
            if lsn not in have
        ]
        if frames:
            self._buffer = sorted(self._buffer + frames, key=lambda bf: bf.lsn)
        return len(frames)

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------

    def attach(self, host: str, client) -> ReplicaLink:
        """Register one replica; its first ship carries resync semantics."""
        link = ReplicaLink(host=host, client=client)
        self.links[host] = link
        if self.obs is not None:
            self.obs.metrics.gauge(
                "replication_lag_frames",
                callback=lambda link=link: self.lag_of(link.host),
                store=self.service.host,
                replica=host,
            )
        return link

    def detach(self, host: str) -> None:
        """Forget a replica (it was promoted away, or decommissioned)."""
        self.links.pop(host, None)

    def last_lsn(self) -> int:
        """LSN of the newest buffered frame (or the WAL tail when drained)."""
        if self._buffer:
            return self._buffer[-1].lsn
        wal = self.service.durability.wal if self.service.durability else None
        return wal.last_lsn if wal is not None else 0

    def lag_of(self, host: str) -> int:
        """Frames the named replica is behind the primary's WAL tail."""
        link = self.links.get(host)
        if link is None:
            return 0
        return max(0, self.last_lsn() - link.acked_lsn)

    def acked_count(self, lsn: Optional[int] = None) -> int:
        """Replicas that have acknowledged everything up to ``lsn``."""
        target = self.last_lsn() if lsn is None else lsn
        return sum(1 for link in self.links.values() if link.acked_lsn >= target)

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def _ship_to(self, link: ReplicaLink) -> bool:
        """Ship pending frames to one replica inside a ``replication.ship`` span.

        The span rides the deployment's shared tracer stack, so a ship
        triggered by an upload's :meth:`after_write` barrier nests under
        that upload's server span — and :class:`~repro.net.client.HttpClient`
        injects the ``Traceparent`` header on the POST, making the
        replica's ``net.request``/``replication.apply`` spans children of
        the same trace.  One upload, one trace tree, primary → replica.
        """
        if not link.resync and (not self._buffer or self._buffer[-1].lsn <= link.acked_lsn):
            # Nothing to ship and nothing to replay: a heartbeat-driven
            # pump on an idle link.  Skip the span — tracing a no-op every
            # tick would charge the workload for telemetry about nothing.
            return True
        tracer = self.service.network.obs.tracer
        with tracer.start_span(
            "replication.ship", store=self.service.host, replica=link.host
        ) as span:
            return self._ship_frames(link, span)

    def _ship_frames(self, link: ReplicaLink, span) -> bool:
        if link.resync:
            # A resync replays the whole generation from its start (the
            # applier resets continuity), plus a snapshot bootstrap when
            # the generation itself starts above lsn 1 — without it a
            # post-checkpoint joiner would silently lack all checkpointed
            # state while staying promotion-eligible.
            self._cover_generation()
            pending = list(self._buffer)
        else:
            pending = [bf for bf in self._buffer if bf.lsn > link.acked_lsn]
        span.set_attributes(frames=len(pending), resync=link.resync)
        if not pending and not link.resync:
            span.set_attribute("outcome", "noop")
            return True
        body = {
            "Primary": self.service.host,
            "Epoch": self.service.epoch,
            "Resync": link.resync,
            "Frames": [bf.to_json() for bf in pending],
        }
        if link.resync:
            body["BaseLsn"] = self._base_lsn
            if self._base_lsn:
                body["Bootstrap"] = [
                    {"Op": op, "Data": data}
                    for op, data in bootstrap_records(self.service)
                ]
        try:
            reply = link.client.post(f"https://{link.host}/api/replicate/append", body)
        except ConflictError as exc:
            # The replica follows a newer epoch: we are a fenced zombie.
            span.set_attribute("outcome", "fenced")
            link.last_error = str(exc)
            self.fenced = True
            if self._c_fenced is not None:
                self._c_fenced.inc()
            self.service.demote()
            return False
        except (TransportError, ServiceError) as exc:
            span.set_attribute("outcome", "unreachable")
            link.alive = False
            link.fails += 1
            link.last_error = str(exc)
            if link.fails >= LAGGING_AFTER_FAILURES and not link.resync:
                # Declared lagging: stop letting a dead replica pin the
                # in-memory frame buffer.  Its acked position is void —
                # when it returns, a full resync (disk backfill plus
                # bootstrap) converges it instead of the buffer.
                link.resync = True
                link.acked_lsn = 0
            if self._c_failures is not None:
                self._c_failures.inc()
            return False
        link.alive = True
        link.fails = 0
        link.last_error = ""
        applied = int(reply.get("AppliedLsn", link.acked_lsn))
        rejected = reply.get("Rejected")
        if rejected:
            # Continuity mismatch: adopt the replica's truth and re-ship
            # with resync semantics on the next pump.
            span.set_attribute("outcome", "rejected")
            link.acked_lsn = applied
            link.resync = True
            link.last_error = str(rejected)
            return False
        span.set_attribute("outcome", "ok")
        link.acked_lsn = max(link.acked_lsn, applied)
        link.resync = False
        if self._c_ships is not None:
            self._c_ships.inc()
            self._c_frames.inc(len(pending))
        return not pending or link.acked_lsn >= pending[-1].lsn

    def pump(self) -> int:
        """Ship pending frames to every replica; returns replicas caught up."""
        caught_up = 0
        for link in list(self.links.values()):
            if self._ship_to(link):
                caught_up += 1
            if self.fenced:
                break
        self._trim()
        return caught_up

    def _trim(self) -> None:
        """Drop buffered frames every link that still needs them has acked.

        The buffer is an optimization, not the source of truth: every
        frame is also in the on-disk WAL until the next checkpoint, and a
        resync re-seeds from there (:meth:`_cover_generation`).  So the
        only links that pin the buffer are live ones mid-stream; a link
        declared lagging (dead past :data:`LAGGING_AFTER_FAILURES`) is
        excluded — that is what keeps the buffer bounded while a replica
        is down for a long time.
        """
        if not self._buffer:
            return
        floors = []
        for link in self.links.values():
            if link.resync and not link.alive:
                continue  # lagging: converged by resync-on-return, not the buffer
            floors.append(0 if link.resync else link.acked_lsn)
        if not floors:
            # Nobody (reachable) needs these frames; the WAL still has them.
            self._buffer = []
            return
        floor = min(floors)
        if floor:
            self._buffer = [bf for bf in self._buffer if bf.lsn > floor]

    def after_write(self) -> None:
        """The service's per-request replication barrier.

        Called after every mutating API request.  ``async`` ships on a
        best-effort basis; ``semi-sync`` additionally *requires* at least
        ``min_acks`` replicas to hold every frame this request journaled,
        or the request is rejected (the client retries — upload dedupe
        and idempotent rule replace make those retries safe).
        """
        target = self.last_lsn()
        self.pump()
        if self.fenced:
            if self._c_rejected is not None:
                self._c_rejected.inc()
            raise ReplicationError(
                f"store {self.service.host!r} was fenced at epoch "
                f"{self.service.epoch}; writes rejected"
            )
        if self.mode != MODE_SEMI_SYNC:
            return
        if self.acked_count(target) < self.min_acks:
            if self._c_rejected is not None:
                self._c_rejected.inc()
            raise ReplicationError(
                f"semi-sync write needs {self.min_acks} replica ack(s) up to "
                f"lsn {target}; reachable replicas are behind or down"
            )

    def status(self) -> dict:
        """Shipping progress per replica, for the CLI and status endpoint."""
        return {
            "Mode": self.mode,
            "MinAcks": self.min_acks,
            "LastLsn": self.last_lsn(),
            "BaseLsn": self._base_lsn,
            "Fenced": self.fenced,
            "Replicas": {
                host: {
                    "AckedLsn": link.acked_lsn,
                    "Lag": self.lag_of(host),
                    "Alive": link.alive,
                    "Resync": link.resync,
                    "Fails": link.fails,
                    "LastError": link.last_error,
                }
                for host, link in sorted(self.links.items())
            },
        }


class ReplicaApplier:
    """Verifies and applies shipped WAL frames on a replica store.

    Frames are replayed through :func:`repro.storage.recovery._apply` —
    the same code path crash recovery trusts — and, when the replica is
    itself durable, re-journaled into its own WAL so a replica crash
    recovers to the replicated state.
    """

    def __init__(self, service):
        self.service = service
        self.primary: Optional[str] = None
        self.applied_lsn = 0
        self.chain = 0
        self.frames_applied = 0
        self.frames_skipped = 0
        self.bootstrap_applied = 0
        obs = service.network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            host = service.host
            self._c_applied = m.counter("replication_frames_applied_total", store=host)
            self._c_stale = m.counter("replication_stale_epoch_total", store=host)
            m.gauge(
                "replication_applied_lsn",
                callback=lambda: self.applied_lsn,
                store=host,
            )
        else:
            self._c_applied = None
            self._c_stale = None

    def apply_batch(self, body: dict) -> dict:
        """Apply one shipped batch; returns the acknowledgement body.

        Epoch fencing happens first: a batch from an older epoch raises
        :class:`~repro.exceptions.StaleEpochError` (409) so the demoted
        sender learns it was fenced.  Continuity mismatches are answered
        with ``Rejected`` + the applied LSN instead of an error, so the
        shipper can resynchronize without guessing.

        Runs inside a ``replication.apply`` span.  The serving
        ``net.request`` span already adopted the shipper's injected
        ``Traceparent``, so this span lands in the *primary's* trace tree:
        the upload that journaled these frames owns the whole path.
        """
        tracer = self.service.network.obs.tracer
        with tracer.start_span(
            "replication.apply",
            store=self.service.host,
            frames=len(body.get("Frames", ())),
        ) as span:
            reply = self._apply_batch(body)
            span.set_attributes(
                applied_lsn=self.applied_lsn,
                outcome="rejected" if reply.get("Rejected") else "ok",
            )
            return reply

    def _apply_batch(self, body: dict) -> dict:
        service = self.service
        epoch = int(body.get("Epoch", 0))
        if epoch < service.epoch:
            if self._c_stale is not None:
                self._c_stale.inc()
            raise StaleEpochError(
                f"ship from epoch {epoch} rejected: {service.host!r} follows "
                f"epoch {service.epoch}"
            )
        service.epoch = epoch
        primary = str(body.get("Primary", "")) or None
        if body.get("Resync"):
            # A (re)joining stream replays its whole generation; the ops
            # are idempotent, so starting over is safe.
            self.applied_lsn = 0
            self.chain = 0
            self.primary = primary or self.primary
            # When the primary has checkpointed, its generation starts
            # above lsn 1 and frames alone cannot converge us: the batch
            # must lead with a snapshot bootstrap covering everything at
            # or below BaseLsn.  A base without a bootstrap is refused —
            # accepting it would leave a silent hole below the first
            # frame while this replica stays promotion-eligible.
            base = int(body.get("BaseLsn", 0))
            if base:
                bootstrap = body.get("Bootstrap")
                if bootstrap is None:
                    return {
                        "AppliedLsn": 0,
                        "Rejected": (
                            f"resync from base lsn {base} carries no "
                            "state bootstrap"
                        ),
                    }
                for record in bootstrap:
                    self._apply_op(
                        str(record.get("Op", "")), record.get("Data", {})
                    )
                    self.bootstrap_applied += 1
                self.applied_lsn = base
        elif primary and self.primary is None:
            self.primary = primary
        for entry in body.get("Frames", []):
            if not self._apply_frame(entry):
                return {
                    "AppliedLsn": self.applied_lsn,
                    "Rejected": f"continuity break at lsn {entry.get('Lsn')}",
                }
        return {"AppliedLsn": self.applied_lsn}

    def _apply_op(self, op: str, data: dict) -> None:
        """Apply one op through the recovery path and re-journal it."""
        from repro.storage.recovery import OP_PLACES, _apply

        service = self.service
        _apply(service, op, data, set(), set())
        if service.durability is not None and service.durability.wal is not None:
            service.durability.wal.append(op, data, force_sync=op in _CONTROL_OPS)
        if op == OP_PLACES:
            if service.release_cache is not None:
                # Places feed rule semantics but move no cache-key component.
                service.release_cache.invalidate_all("replication")
            compiled_rules = getattr(service, "compiled_rules", None)
            if compiled_rules is not None:
                compiled_rules.invalidate_all("replication")

    def _apply_frame(self, entry: dict) -> bool:
        """Verify + apply one frame; False on a continuity rejection."""
        try:
            lsn = int(entry["Lsn"])
            chain_prev = int(entry["ChainPrev"])
            frame = bytes.fromhex(str(entry["Frame"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptRecordError(f"malformed shipped frame: {exc}") from exc
        if lsn <= self.applied_lsn:
            self.frames_skipped += 1  # idempotent re-ship
            return True
        if self.applied_lsn and lsn != self.applied_lsn + 1:
            return False  # gap: frames were lost in shipping
        if not self.applied_lsn and lsn != 1:
            # A stream with no history here must start at its beginning
            # (lsn 1, or a bootstrap that raised applied_lsn above zero).
            # Silently adopting a mid-stream start would leave an
            # undetectable hole below ``lsn`` on a promotion candidate.
            return False
        # ChainPrev must extend our chain — or be zero, which marks the
        # primary's checkpoint reset (a new log generation).
        if self.applied_lsn and chain_prev not in (self.chain, 0):
            return False
        frame_lsn, chain, payload = decode_frame(frame, chain_prev=chain_prev)
        if frame_lsn != lsn:
            raise CorruptRecordError(
                f"shipped frame lsn mismatch: envelope {lsn}, frame {frame_lsn}"
            )
        obj = jsonutil.loads(payload.decode("utf-8"))
        self._apply_op(str(obj["Op"]), obj.get("Data", {}))
        self.applied_lsn = lsn
        self.chain = chain
        self.frames_applied += 1
        if self._c_applied is not None:
            self._c_applied.inc()
        return True

    def status(self) -> dict:
        """Apply progress, for ``/api/replicate/status`` and the CLI."""
        return {
            "Primary": self.primary,
            "Epoch": self.service.epoch,
            "AppliedLsn": self.applied_lsn,
            "Chain": self.chain,
            "FramesApplied": self.frames_applied,
            "FramesSkipped": self.frames_skipped,
            "BootstrapApplied": self.bootstrap_applied,
            "RuleVersions": {
                name: self.service.rules.version_of(name)
                for name in self.service.rules.contributors()
            },
        }
