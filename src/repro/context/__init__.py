"""Context inference: turning raw signals into behavioral labels.

The paper's smartphones infer "stress, smoking, conversation, and
transportation modes ... using the sensors on the phone and the chest
band" (Section 6), citing Plarre et al. for stress/smoking and Reddy et
al. for transportation mode.  Those models need real physiological data;
here windowed-feature classifiers recover the labels from the synthetic
signals of :mod:`repro.sensors.simulator`, whose statistics they mirror
(see DESIGN.md, Substitutions).  The rule engine consumes only the labels,
so classifier internals are swappable.
"""

from repro.context.features import FeatureVector, window_features
from repro.context.classifiers import (
    ActivityClassifier,
    ContextClassifier,
    ConversationClassifier,
    InferencePipeline,
    SmokingClassifier,
    StressClassifier,
)
from repro.context.annotate import ContextAnnotator, annotate_packets

__all__ = [
    "FeatureVector",
    "window_features",
    "ActivityClassifier",
    "ContextClassifier",
    "ConversationClassifier",
    "InferencePipeline",
    "SmokingClassifier",
    "StressClassifier",
    "ContextAnnotator",
    "annotate_packets",
]
