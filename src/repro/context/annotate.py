"""Annotating sensor data with inferred context labels.

Section 6: "the sensor data are annotated with the context information and
uploaded to remote data stores."  The annotator buffers packets into
aligned time windows, extracts features across channels, runs the
inference pipeline, and emits the same packets with their ``context``
field replaced by the *inferred* labels.

The annotator is the phone-side component; the smartphone agent
(:mod:`repro.collection.phone`) wires it between sensing and upload, and
also consults it for rule-aware collection decisions.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.context.classifiers import InferencePipeline
from repro.context.features import window_features
from repro.sensors.packets import SensorPacket


class ContextAnnotator:
    """Sliding-window context inference over interleaved packets.

    Packets are grouped into fixed windows of ``window_ms``; each window's
    labels are inferred from every channel present in it, then stamped on
    the window's packets.  Windows are keyed by
    ``floor(start / window_ms)``, so the grouping is deterministic and
    stateless across calls.
    """

    def __init__(self, window_ms: int = 60_000, pipeline: Optional[InferencePipeline] = None):
        self.window_ms = window_ms
        self.pipeline = pipeline or InferencePipeline()

    def _window_key(self, packet: SensorPacket) -> int:
        return packet.start_ms // self.window_ms

    def annotate(self, packets: Iterable[SensorPacket]) -> list:
        """Return the packets re-stamped with inferred context labels."""
        windows: dict[int, list] = {}
        for packet in packets:
            windows.setdefault(self._window_key(packet), []).append(packet)
        out: list[SensorPacket] = []
        for key in sorted(windows):
            group = windows[key]
            labels = self.infer_window(group)
            for packet in group:
                out.append(
                    SensorPacket(
                        channel_name=packet.channel_name,
                        start_ms=packet.start_ms,
                        interval_ms=packet.interval_ms,
                        values=packet.values,
                        location=packet.location,
                        context=dict(labels),
                    )
                )
        out.sort(key=lambda p: (p.start_ms, p.channel_name))
        return out

    def infer_window(self, packets: Iterable[SensorPacket]) -> dict:
        """Infer labels for one window's worth of packets."""
        by_channel: dict[str, list] = {}
        rates: dict[str, float] = {}
        for packet in packets:
            by_channel.setdefault(packet.channel_name, []).extend(packet.values)
            rates[packet.channel_name] = 1000.0 / packet.interval_ms
        features = {
            name: window_features(np.asarray(values), rates[name])
            for name, values in by_channel.items()
            if values
        }
        return self.pipeline.infer(features)


def annotate_packets(
    packets: Iterable[SensorPacket], window_ms: int = 60_000
) -> list:
    """One-shot convenience wrapper around :class:`ContextAnnotator`."""
    return ContextAnnotator(window_ms=window_ms).annotate(packets)


def label_accuracy(packets: Iterable[SensorPacket], truth_lookup) -> dict:
    """Score inferred packet labels against ground truth.

    ``truth_lookup(ts_ms)`` must return the ground-truth
    :class:`~repro.sensors.personas.ActivityState` (or None).  Returns per-
    category accuracy over packets that carry both an inferred label and a
    ground-truth state — the metric used by benchmark C4 and the context
    tests.
    """
    correct: dict[str, int] = {}
    total: dict[str, int] = {}
    for packet in packets:
        state = truth_lookup(packet.start_ms)
        if state is None:
            continue
        truth = state.context_labels()
        for category, label in packet.context.items():
            if category not in truth:
                continue
            total[category] = total.get(category, 0) + 1
            if truth[category] == label:
                correct[category] = correct.get(category, 0) + 1
    return {
        category: correct.get(category, 0) / count
        for category, count in total.items()
        if count
    }
