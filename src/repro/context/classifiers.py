"""Context classifiers over windowed features.

Each classifier maps per-channel :class:`FeatureVector` s for one time
window to a label in its category's vocabulary, or None when its input
channels are absent (a window with no respiration samples cannot be
classified for smoking).  Decision boundaries sit between the simulator's
signal-model operating points, giving high — but deliberately not perfect —
accuracy: windows straddling ground-truth state changes mix two regimes,
exactly the noise source a real deployment has.

The activity classifier is nearest-centroid over (std, dominant frequency)
of the accelerometer magnitude, with the centroids taken from the same
per-mode table the simulator uses.  The physiological classifiers are
threshold rules on breathing/heart-rate statistics, following the shape of
the AutoSense stress/smoking detectors the paper cites.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.context.features import FeatureVector

# Operating points (must track repro.sensors.simulator's signal models).
_ACTIVITY_CENTROIDS = {
    # mode: (combined 3-axis std incl. periodic power, dominant freq Hz).
    # std = sqrt(3 * (noise^2 + amp^2 / 2)) from the simulator's table.
    "Still": (0.09, 0.0),
    "Drive": (0.86, 0.3),
    "Walk": (1.80, 1.8),
    "Bike": (2.40, 1.2),
    "Run": (4.22, 2.8),
}
_RESP_SMOKING_MAX_MEAN = 11.0  # smoking rate 8 vs baseline 14
_RESP_STRESS_MIN_MEAN = 16.5  # stressed rate 19 vs baseline 14
_MIC_CONVERSATION_MIN_DB = -32.0  # conversation -22 vs quiet -60 / drive -38
_RESP_CONVERSATION_MIN_STD = 1.8  # irregular breathing while talking


class ContextClassifier:
    """Base class: classify one window of per-channel features."""

    #: Category name this classifier produces labels for.
    category = "abstract"
    #: Channels whose features must be present.
    required_channels: tuple = ()

    def classify(self, features: Mapping[str, FeatureVector]) -> Optional[str]:
        if any(name not in features for name in self.required_channels):
            return None
        return self._classify(features)

    def _classify(self, features: Mapping[str, FeatureVector]) -> str:
        raise NotImplementedError


class ActivityClassifier(ContextClassifier):
    """Transportation mode from accelerometer magnitude statistics."""

    category = "Activity"
    required_channels = ("AccelX", "AccelY", "AccelZ")

    def _classify(self, features: Mapping[str, FeatureVector]) -> str:
        # Combine the three axes: total non-gravity variance and the
        # strongest dominant frequency across axes.
        std = math.sqrt(
            sum(features[axis].std ** 2 for axis in self.required_channels)
        )
        freq = max(features[axis].dominant_freq_hz for axis in self.required_channels)
        best_mode, best_dist = "Still", float("inf")
        for mode, (c_std, c_freq) in _ACTIVITY_CENTROIDS.items():
            # std carries most of the signal; frequency is down-weighted
            # because low sampling rates alias the faster gaits.
            dist = (std - c_std) ** 2 + 0.3 * (freq - c_freq) ** 2
            if dist < best_dist:
                best_mode, best_dist = mode, dist
        return best_mode


class SmokingClassifier(ContextClassifier):
    """Smoking episodes: slow, deep breathing signature."""

    category = "Smoking"
    required_channels = ("Respiration",)

    def _classify(self, features: Mapping[str, FeatureVector]) -> str:
        resp = features["Respiration"]
        return "Smoking" if resp.mean < _RESP_SMOKING_MAX_MEAN else "NotSmoking"


class StressClassifier(ContextClassifier):
    """Stress from elevated breathing rate, corroborated by heart rate.

    Exercise also raises heart rate, so the breathing-rate test leads and
    the ECG (heart-rate proxy) only breaks ties: high respiration alone is
    enough, matching how the simulator couples stress to respiration.
    """

    category = "Stress"
    required_channels = ("Respiration",)

    def _classify(self, features: Mapping[str, FeatureVector]) -> str:
        resp = features["Respiration"]
        if resp.mean < _RESP_SMOKING_MAX_MEAN:
            return "NotStressed"  # smoking signature, not stress
        return "Stressed" if resp.mean > _RESP_STRESS_MIN_MEAN else "NotStressed"


class ConversationClassifier(ContextClassifier):
    """Conversation from microphone amplitude or breathing irregularity.

    Either sensor suffices (the paper: "microphones and respiration
    sensors can be used to infer whether a data contributor is in
    conversation"), so the classifier degrades gracefully when one channel
    is disabled by rule-aware collection.
    """

    category = "Conversation"
    required_channels = ()

    def classify(self, features: Mapping[str, FeatureVector]) -> Optional[str]:
        mic = features.get("MicAmplitude")
        resp = features.get("Respiration")
        if mic is None and resp is None:
            return None
        return self._classify(features)

    def _classify(self, features: Mapping[str, FeatureVector]) -> str:
        mic = features.get("MicAmplitude")
        if mic is not None and mic.mean > _MIC_CONVERSATION_MIN_DB:
            return "Conversation"
        resp = features.get("Respiration")
        if (
            resp is not None
            and resp.std > _RESP_CONVERSATION_MIN_STD
            and resp.mean >= _RESP_SMOKING_MAX_MEAN  # smoking wave is not talk
        ):
            return "Conversation"
        return "NotConversation"


class InferencePipeline:
    """Runs every registered classifier over a window's features."""

    def __init__(self, classifiers: Optional[list] = None):
        self.classifiers = classifiers or [
            ActivityClassifier(),
            StressClassifier(),
            SmokingClassifier(),
            ConversationClassifier(),
        ]

    def infer(self, features: Mapping[str, FeatureVector]) -> dict:
        """Labels keyed by category; categories lacking input are omitted."""
        labels = {}
        for clf in self.classifiers:
            label = clf.classify(features)
            if label is not None:
                labels[clf.category] = label
        return labels
