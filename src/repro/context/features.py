"""Windowed feature extraction over sensor samples.

Classifiers operate on fixed-duration windows of per-channel samples.  The
features follow the literature the paper cites: accelerometer variance and
dominant frequency for transportation mode (Reddy et al.), heart/breathing
rate statistics for stress and smoking (Plarre et al.), and amplitude
statistics for conversation detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class FeatureVector:
    """Summary statistics of one channel over one window."""

    mean: float
    std: float
    minimum: float
    maximum: float
    dominant_freq_hz: float
    energy: float

    @property
    def peak_to_peak(self) -> float:
        return self.maximum - self.minimum


def dominant_frequency(values: np.ndarray, rate_hz: float) -> float:
    """Dominant non-DC frequency via the real FFT, in Hz.

    Returns 0.0 for windows too short to estimate or with negligible
    spectral energy (a flat signal has no meaningful dominant frequency).
    """
    n = len(values)
    if n < 8 or rate_hz <= 0:
        return 0.0
    centered = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    if len(spectrum) <= 1:
        return 0.0
    spectrum[0] = 0.0  # ignore DC
    peak = int(np.argmax(spectrum))
    if spectrum[peak] < 1e-9:
        return 0.0
    freqs = np.fft.rfftfreq(n, d=1.0 / rate_hz)
    return float(freqs[peak])


def window_features(values: np.ndarray, rate_hz: float) -> FeatureVector:
    """Compute the standard feature vector for one channel window."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("cannot extract features from an empty window")
    centered = arr - arr.mean()
    return FeatureVector(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        dominant_freq_hz=dominant_frequency(arr, rate_hz),
        energy=float(np.mean(centered**2)),
    )


def channel_features(
    windows: Mapping[str, np.ndarray], rates_hz: Mapping[str, float]
) -> dict:
    """Feature vectors for several channels' windows at once."""
    out = {}
    for name, values in windows.items():
        rate = rates_hz.get(name, 0.0)
        out[name] = window_features(values, rate)
    return out
