"""The broker's shard directory: consistent hashing + versioned routing.

The paper's scalability story is that "the broker only brokers": data
flows contributor-store -> consumer directly, so the broker's job is to
answer *where* a contributor lives — a directory lookup, not a data
transfer.  This module makes that directory real at fleet scale:

* :class:`HashRing` — consistent hashing with virtual nodes.  New
  contributors are *placed* on a shard by hashing their name; adding a
  shard moves only ``~1/N`` of future placements, which is what makes a
  shard split migrate a bounded contributor range instead of reshuffling
  the world.
* :class:`ShardDirectory` — the routing table.  Per-contributor routes
  stay authoritative in the :class:`~repro.broker.registry
  .ContributorRegistry` (one record, one host); the directory wraps every
  route *change* (shard add/remove, failover repoint, migration cutover)
  and stamps it with a monotonically increasing ``routing_epoch``.

The epoch reuses the ``rules_version`` trick from
:mod:`repro.datastore.cache`: clients cache ``(host, epoch)`` pairs, and
because every topology change bumps the epoch, a stale client cache is
*unreachable by construction* — the moved contributor's old shard fences
the request with :class:`~repro.exceptions.NotPrimaryError` (the same
409 the failover path uses), the client re-resolves here, and the fresh
route carries a fresh epoch.  No TTLs, no guessing: a cached route is
either current or it self-identifies as stale on first use.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional

from repro.exceptions import ConflictError, NotFoundError

#: Virtual nodes per shard host.  More vnodes flatten placement skew at
#: the cost of a larger ring; 64 keeps the max/min contributor ratio
#: within ~20% for realistic fleet sizes (test_directory asserts this).
DEFAULT_VNODES = 64


def _hash64(key: str) -> int:
    """Stable 64-bit hash (sha1 prefix) — never Python's salted hash()."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping contributor names to shard hosts."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        self.vnodes = max(1, int(vnodes))
        self._points: list[int] = []  # sorted vnode positions
        self._owner: dict[int, str] = {}  # position -> host
        self._hosts: set[str] = set()

    def __len__(self) -> int:
        return len(self._hosts)

    def __contains__(self, host: str) -> bool:
        return host in self._hosts

    def hosts(self) -> list:
        return sorted(self._hosts)

    def add(self, host: str) -> None:
        if host in self._hosts:
            raise ConflictError(f"shard already on the ring: {host!r}")
        self._hosts.add(host)
        for i in range(self.vnodes):
            point = _hash64(f"{host}#{i}")
            # Collisions across hosts are astronomically unlikely but must
            # not silently reassign an existing vnode; skip ours instead.
            if point in self._owner:
                continue
            bisect.insort(self._points, point)
            self._owner[point] = host

    def remove(self, host: str) -> None:
        if host not in self._hosts:
            raise NotFoundError(f"shard not on the ring: {host!r}")
        self._hosts.discard(host)
        dead = [p for p, h in self._owner.items() if h == host]
        for point in dead:
            del self._owner[point]
        self._points = sorted(self._owner)

    def route(self, key: str) -> str:
        """The shard host owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise NotFoundError("hash ring has no shards")
        idx = bisect.bisect(self._points, _hash64(key))
        if idx == len(self._points):
            idx = 0  # wrap: the ring is a circle
        return self._owner[self._points[idx]]


class ShardDirectory:
    """Versioned routing table over the contributor registry.

    The registry record's ``host`` field stays the single source of truth
    for "where does contributor X live"; this class owns the *placement*
    policy (the hash ring) and the *version* of the table (the routing
    epoch).  Every mutation path that changes any route goes through here
    so the epoch can never miss a change:

    * :meth:`add_shard` / :meth:`remove_shard` — topology changes;
    * :meth:`repoint` — failover re-homing a whole host;
    * :meth:`move` — migration cutover re-homing chosen contributors.
    """

    def __init__(self, registry, *, vnodes: int = DEFAULT_VNODES, obs=None):
        self.registry = registry
        self.ring = HashRing(vnodes)
        #: Monotonic routing-table version; bumped by every route change.
        #: Starts at 1 so "0" can mean "client has never resolved".
        self.routing_epoch = 1
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_lookups = m.counter("routing_lookups_total")
            self._c_moves = m.counter("routing_moves_total")
            m.gauge("routing_epoch", callback=lambda: self.routing_epoch)
            m.gauge("shard_count", callback=lambda: len(self.ring))
        else:
            self._c_lookups = None
            self._c_moves = None

    # -- topology --------------------------------------------------------

    def add_shard(self, host: str) -> int:
        """Put a shard host on the ring; returns the new routing epoch."""
        self.ring.add(host)
        return self._bump()

    def remove_shard(self, host: str) -> int:
        """Take a shard off the ring (existing routes are untouched)."""
        self.ring.remove(host)
        return self._bump()

    def shards(self) -> list:
        return self.ring.hosts()

    # -- placement and lookup -------------------------------------------

    def place(self, contributor: str) -> Optional[str]:
        """The shard a *new* contributor should live on (None: no fleet)."""
        if not len(self.ring):
            return None
        return self.ring.route(contributor)

    def route(self, contributor: str) -> tuple:
        """Authoritative ``(host, routing_epoch)`` for one contributor."""
        record = self.registry.get(contributor)
        if self._c_lookups is not None:
            self._c_lookups.inc()
        return record.host, self.routing_epoch

    # -- route changes (every one bumps the epoch) -----------------------

    def repoint(self, old_host: str, new_host: str) -> int:
        """Failover path: re-home every contributor of one host; returns moved."""
        moved = self.registry.repoint_host(old_host, new_host)
        if moved:
            self._bump(moved)
        return moved

    def move(self, contributors, new_host: str) -> int:
        """Migration cutover: re-home chosen contributors in one epoch bump."""
        moved = 0
        for name in contributors:
            record = self.registry.get(name)
            if record.host != new_host:
                record.host = new_host
                moved += 1
        if moved:
            self._bump(moved)
        return moved

    def _bump(self, moved: int = 0) -> int:
        self.routing_epoch += 1
        if self._c_moves is not None and moved:
            self._c_moves.inc(moved)
        return self.routing_epoch

    # -- split planning --------------------------------------------------

    def plan_split(self, source_host: str, new_host: str) -> list:
        """Contributors a split would move ``source_host`` -> ``new_host``.

        Assumes ``new_host`` is already on the ring (add it first, so new
        registrations land there while the migration runs): the plan is
        every contributor *currently on the source* whose ring placement
        is the new shard.  Contributors the ring maps elsewhere stay put —
        a split never touches more than the moving range.
        """
        return [
            record.name
            for record in self.registry.on_host(source_host)
            if self.ring.route(record.name) == new_host
        ]

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """Routing-table summary for ``/api/shards/status`` and the fleet."""
        per_shard = {host: 0 for host in self.ring.hosts()}
        off_ring = 0
        for record in self.registry.all():
            if record.host in per_shard:
                per_shard[record.host] += 1
            else:
                off_ring += 1
        return {
            "Epoch": self.routing_epoch,
            "Shards": per_shard,
            "OffRing": off_ring,
            "Contributors": len(self.registry),
        }
