"""Online shard split/migration: the broker-driven rebalance coordinator.

A migration moves a contributor range from one shard to another while
both keep serving, with the WAL as the transfer log.  The phase machine
(documented with a diagram in ``docs/ARCHITECTURE.md``):

1. **bootstrap** — ``/api/migrate/export`` (FromLsn 0) snapshots the
   moving contributors' durable state, WAL-shaped;
   ``/api/migrate/install`` replays it through the destination's
   recovery path and re-journals it there.
2. **catch-up** — bounded rounds of filtered WAL-tail export/install
   drain writes that raced the bootstrap, until a round comes back
   empty (or the bound trips — the fence drains the rest).
3. **fence** — ``/api/migrate/fence`` marks the range ``moved_out`` on
   the source: from that instant every request naming a moved
   contributor bounces with :class:`~repro.exceptions.NotPrimaryError`
   (the old shard self-demotes for exactly that range), and the fence
   response pins the source's final LSN.
4. **drain** — one last export from the pre-fence cursor provably
   captures every write that committed before the fence: zero
   committed-write loss across the cutover.
5. **verify (fail-closed)** — ``/api/migrate/complete`` checks the
   destination's installed rule versions against the broker mirror;
   any contributor whose rule state isn't verifiably current is denied
   by default until their owner re-publishes (the promotion fence from
   :mod:`repro.broker.failover`).  A migration may deny; it must never
   widen access.
6. **cutover** — :meth:`~repro.broker.directory.ShardDirectory.move`
   repoints the moved range in ONE routing-epoch bump, the mirror
   force-pulls from the destination, and escrowed consumers are
   re-registered there.  Contributor phones re-key lazily via the
   existing :meth:`~repro.core.system.SensorSafeSystem
   .repoint_contributor` runbook step.

Order matters: the fence precedes the cutover, so there is no instant
at which both shards would accept writes for the same contributor — the
window shows up as one fenced retry on the client, not as divergence.
"""

from __future__ import annotations

from repro.exceptions import (
    BadRequestError,
    SensorSafeError,
    ServiceError,
    TransportError,
)

#: Catch-up export/install rounds before fencing; each round shrinks the
#: remaining delta, and the post-fence drain is what guarantees zero
#: loss, so the bound trades fence-window length against pre-fence work.
DEFAULT_CATCHUP_ROUNDS = 3


class ShardRebalancer:
    """Drives contributor-range migrations between the broker's shards."""

    def __init__(self, broker, *, catchup_rounds: int = DEFAULT_CATCHUP_ROUNDS):
        self.broker = broker
        self.catchup_rounds = max(0, int(catchup_rounds))
        #: Trace-stamped migration audit records, newest last (same shape
        #: as failover events; surfaced in the fleet snapshot).
        self.events: list = []
        self.active = 0
        obs = broker.network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_migrations = m.counter("migrations_total")
            self._c_shipped = m.counter("migration_records_shipped_total")
            self._c_failclosed = m.counter("migration_failclosed_total")
            self._h_duration = m.histogram("migration_ms")
            m.gauge("migration_active", callback=lambda: self.active)
        else:
            self._c_migrations = None
            self._c_shipped = None
            self._c_failclosed = None
            self._h_duration = None

    # ------------------------------------------------------------------
    # Store RPC plumbing
    # ------------------------------------------------------------------

    def _store_call(self, host: str, path: str, body: dict) -> dict:
        key = self.broker.store_keys.get(host)
        if key is None:
            raise ServiceError(f"no broker key for store host {host!r}", status=404)
        return self.broker.client.with_key(key).post(f"https://{host}{path}", body)

    def _export(self, source: str, contributors: list, from_lsn: int) -> dict:
        return self._store_call(
            source,
            "/api/migrate/export",
            {"Contributors": contributors, "FromLsn": int(from_lsn)},
        )

    def _install(self, dest: str, records: list) -> dict:
        result = self._store_call(dest, "/api/migrate/install", {"Records": records})
        if self._c_shipped is not None and records:
            self._c_shipped.inc(len(records))
        return result

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    def migrate(self, contributors, dest_host: str) -> dict:
        """Move a contributor range to ``dest_host`` (phases 1–6 above)."""
        tracer = self.broker.network.obs.tracer
        with tracer.start_span("shard.migrate", dest=dest_host) as span:
            return self._migrate(contributors, dest_host, span)

    def _migrate(self, contributors, dest_host: str, span) -> dict:
        names = sorted(set(str(c) for c in contributors))
        if not names:
            return {"Moved": 0, "Source": None, "Dest": dest_host,
                    "FailClosed": [], "RecordsShipped": 0}
        sources = {self.broker.registry.get(name).host for name in names}
        if len(sources) != 1:
            raise BadRequestError(
                f"one source shard per migration, got {sorted(sources)}"
            )
        source = sources.pop()
        if source == dest_host:
            return {"Moved": 0, "Source": source, "Dest": dest_host,
                    "FailClosed": [], "RecordsShipped": 0}
        clock = self.broker.network.clock
        started_ms = clock.now_ms()
        self.active += 1
        try:
            # Phase 1: snapshot bootstrap.  The export pins LastLsn before
            # reading state, so the first catch-up covers racing writes.
            export = self._export(source, names, 0)
            cursor = int(export.get("LastLsn", 0))
            shipped = len(export.get("Records", []))
            self._install(dest_host, export.get("Records", []))
            # Phase 2: bounded catch-up.  A non-durable source has no WAL
            # to tail — its "delta" is a fresh snapshot, which idempotent
            # records make safe; one round of that is enough pre-fence.
            for _ in range(self.catchup_rounds):
                delta = self._export(source, names, max(cursor, 1))
                records = delta.get("Records", [])
                cursor = max(cursor, int(delta.get("LastLsn", 0)))
                if records:
                    shipped += len(records)
                    self._install(dest_host, records)
                if not records or delta.get("Base") == "snapshot":
                    break
            # Phase 3: fence the source — the moved range now answers 409.
            fence = self._store_call(
                source,
                "/api/migrate/fence",
                {"Contributors": names, "Dest": dest_host},
            )
            final_lsn = int(fence.get("LastLsn", 0))
            # Phase 4: final drain — everything committed before the fence.
            if final_lsn > cursor or cursor == 0:
                drain = self._export(source, names, max(cursor, 1))
                records = drain.get("Records", [])
                if records:
                    shipped += len(records)
                    self._install(dest_host, records)
            # Phase 5: fail-closed verification against the broker mirror.
            versions = {
                name: self.broker.registry.get(name).rules_version
                for name in names
            }
            complete = self._store_call(
                dest_host, "/api/migrate/complete", {"RuleVersions": versions}
            )
            fail_closed = sorted(complete.get("FailClosed", []))
            # Phase 6: cutover — one routing-epoch bump repoints the range.
            moved = self.broker.directory.move(names, dest_host)
            epoch = self.broker.directory.routing_epoch
            self._converge_mirror(names, dest_host)
            reregistered = self.broker.failover._reregister_consumers(
                source, dest_host
            )
        finally:
            self.active -= 1
        duration_ms = clock.now_ms() - started_ms
        if self._c_migrations is not None:
            self._c_migrations.inc()
            if fail_closed:
                self._c_failclosed.inc(len(fail_closed))
            self._h_duration.observe(duration_ms)
        span.set_attributes(source=source, moved=moved, epoch=epoch)
        report = {
            "Moved": moved,
            "Source": source,
            "Dest": dest_host,
            "RoutingEpoch": epoch,
            "RecordsShipped": shipped,
            "FailClosed": fail_closed,
            "ConsumersReRegistered": reregistered,
            "DurationMs": duration_ms,
            "TraceId": span.trace_id,
        }
        self.events.append({
            "Event": "migrate",
            "Source": source,
            "Dest": dest_host,
            "Contributors": len(names),
            "Moved": moved,
            "RecordsShipped": shipped,
            "FailClosed": fail_closed,
            "RoutingEpoch": epoch,
            "AtMs": int(clock.now_ms()),
            "DurationMs": duration_ms,
            "TraceId": span.trace_id,
        })
        return report

    def _converge_mirror(self, names: list, dest_host: str) -> None:
        """Force-pull the moved range from the destination (store is
        authority — fail-closed denies there carry bumped versions and
        must win over the mirror, exactly as restart reconciliation)."""
        key = self.broker.store_keys.get(dest_host)
        if key is None:
            return
        for name in names:
            try:
                self.broker.sync.pull(self.broker.client, name, key, force=True)
            except (TransportError, SensorSafeError):
                self.broker.sync._stale.add(name)

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def split_shard(self, source_host: str, dest_host: str) -> dict:
        """Split one shard: ring-add the destination, move its range.

        The destination joins the ring *first*, so contributors who
        register mid-split already land there; the migration then moves
        exactly the existing contributors whose ring placement is the new
        shard.  Requires the destination store to be broker-attached.
        """
        if dest_host not in self.broker.store_keys:
            raise ServiceError(
                f"destination {dest_host!r} is not broker-attached", status=404
            )
        directory = self.broker.directory
        if dest_host not in directory.ring:
            directory.add_shard(dest_host)
        plan = directory.plan_split(source_host, dest_host)
        report = self.migrate(plan, dest_host)
        report["Planned"] = len(plan)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        return {
            "Active": self.active,
            "Migrations": sum(1 for e in self.events if e["Event"] == "migrate"),
            "Events": list(self.events[-20:]),
        }
