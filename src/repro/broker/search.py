"""Contributor search over synchronized privacy rules (Section 5.2).

"Data consumers can search for all conditions and actions of privacy rules
such as location, time, sensor, context, and abstraction.  For example,
finding data contributors who share ECG and respiration sensor data at the
location labeled 'work' from 9am to 6pm on weekdays can be performed."

Search is implemented by *probe evaluation*: for each contributor, the
broker builds the same :class:`~repro.rules.engine.RuleEngine` a store
would use (from the synced rules and places) and evaluates synthetic probe
segments that embody the criteria — requested channels, placed at the
named location, stamped at representative instants of the requested time
windows, annotated with the requested context.  A contributor matches when
every probe releases every requested channel raw and every required
context label.  Because the probe engine *is* the enforcement engine,
search precision/recall against ground truth is exact (benchmark C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.broker.registry import ContributorRecord, ContributorRegistry
from repro.datastore.wavesegment import WaveSegment
from repro.exceptions import QueryError, SensorSafeError
from repro.rules.engine import RuleEngine
from repro.sensors.channels import expand_channel_group
from repro.sensors.contexts import CONTEXTS
from repro.util.geo import LatLon
from repro.util.timeutil import Interval, TimeCondition, timestamp_ms

#: Monday of the canonical probe week (the paper's own demo era).
REFERENCE_WEEK_START = timestamp_ms(2011, 2, 7)

_MS_PER_DAY = 86_400_000

#: Neutral context values for probe segments; criteria override these.
_NEUTRAL_CONTEXT = {
    "Activity": "Still",
    "Stress": "NotStressed",
    "Conversation": "NotConversation",
    "Smoking": "NotSmoking",
}


@dataclass(frozen=True)
class SearchCriteria:
    """What the data consumer needs contributors to share.

    Attributes:
        consumer: the requesting consumer's user name.
        channels: channel or group names that must be released as raw data.
        location_label: the contributor-defined place the data must come
            from; a contributor without a place of that name cannot match.
        time: the windows during which the sharing must hold; probes are
            placed at the midpoint of every matching window on a canonical
            week (absolute ranges probe their own midpoints).
        contexts: context values the probe carries ("Activity" -> "Drive"
            to search for people sharing while driving).
        require_labels: categories whose label (at any non-NotShare level)
            must be released even if raw channels are not requested.
    """

    consumer: str
    channels: tuple[str, ...] = ()
    location_label: Optional[str] = None
    time: TimeCondition = field(default_factory=TimeCondition)
    contexts: dict = field(default_factory=dict)
    require_labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.consumer:
            raise QueryError("search criteria need a consumer name")
        for name in self.channels:
            expand_channel_group(name)
        for category in list(self.contexts) + list(self.require_labels):
            if category not in CONTEXTS:
                raise QueryError(f"unknown context category in criteria: {category!r}")

    def expanded_channels(self) -> tuple:
        out: list[str] = []
        for name in self.channels:
            for ch in expand_channel_group(name):
                if ch not in out:
                    out.append(ch)
        return tuple(out)

    def probe_context(self) -> dict:
        merged = dict(_NEUTRAL_CONTEXT)
        merged.update(self.contexts)
        return merged

    def to_json(self) -> dict:
        obj: dict = {"Consumer": self.consumer}
        if self.channels:
            obj["Sensor"] = list(self.channels)
        if self.location_label:
            obj["LocationLabel"] = self.location_label
        obj.update(self.time.to_json())
        if self.contexts:
            obj["Context"] = dict(self.contexts)
        if self.require_labels:
            obj["RequireLabels"] = list(self.require_labels)
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "SearchCriteria":
        if not isinstance(obj, dict):
            raise QueryError("search criteria must be a JSON object")
        return cls(
            consumer=str(obj.get("Consumer", "")),
            channels=tuple(obj.get("Sensor", ())),
            location_label=obj.get("LocationLabel"),
            time=TimeCondition.from_json(obj),
            contexts=dict(obj.get("Context", {})),
            require_labels=tuple(obj.get("RequireLabels", ())),
        )


def probe_instants(time: TimeCondition) -> list:
    """Representative instants for a time condition.

    Unconstrained conditions probe one canonical instant (Monday noon of
    the reference week).  Absolute ranges probe their midpoints; repeated
    windows probe the midpoint of every occurrence within the canonical
    week.
    """
    if time.is_unconstrained():
        return [REFERENCE_WEEK_START + 12 * 3_600_000]
    instants = [iv.start + iv.duration_ms // 2 for iv in time.intervals]
    if time.repeated:
        week = Interval(REFERENCE_WEEK_START, REFERENCE_WEEK_START + 7 * _MS_PER_DAY)
        for piece in time.matching_intervals(week):
            instants.append(piece.start + piece.duration_ms // 2)
    return sorted(set(instants))


class ContributorSearch:
    """Probe-based search over the broker's contributor registry."""

    def __init__(
        self,
        registry: ContributorRegistry,
        membership: Optional[Callable[[str], FrozenSet[str]]] = None,
    ):
        self.registry = registry
        self.membership = membership

    def matches(self, record: ContributorRecord, criteria: SearchCriteria) -> bool:
        """Does one contributor's rule set satisfy the criteria?"""
        channels = criteria.expanded_channels()
        if not channels and not criteria.require_labels:
            return True  # vacuous criteria: everyone matches
        location = self._probe_location(record, criteria)
        if criteria.location_label is not None and location is None:
            return False  # contributor has no such place
        engine = RuleEngine(record.rules, record.places, membership=self.membership)
        context = criteria.probe_context()
        # The probe must carry the channels whose release is requested,
        # plus the source channels of any required label categories —
        # labels are only releasable for categories the probed channels
        # could reveal.
        probe_channels = list(channels)
        for category in criteria.require_labels:
            for source in CONTEXTS[category].source_channels:
                if source not in probe_channels:
                    probe_channels.append(source)
        for instant in probe_instants(criteria.time):
            probe = self._probe_segment(
                record.name, tuple(probe_channels), instant, location, context
            )
            released = engine.evaluate(criteria.consumer, [probe])
            raw_channels: set = set()
            labels: set = set()
            for item in released:
                raw_channels.update(item.channels())
                labels.update(item.context_labels)
            if not set(channels) <= raw_channels:
                return False
            if not set(criteria.require_labels) <= labels:
                return False
        return True

    def search(self, criteria: SearchCriteria) -> list:
        """Contributor records matching the criteria, name order."""
        return [r for r in self.registry.all() if self.matches(r, criteria)]

    def search_sharded(self, criteria: SearchCriteria, *, max_workers: int = 8):
        """Fan probe evaluation out across shards concurrently.

        Registry records are partitioned by store host and each shard's
        partition is evaluated in its own worker thread.  This is safe
        because probe evaluation is pure CPU over the broker's *local*
        mirror (rules + places synced into the registry) — it never
        touches the network, the clock, or shared observability state.

        Per-shard partial-failure accounting: a record whose evaluation
        raises is fail-closed (counted as an error, never a match) and
        the rest of its shard — and every other shard — still evaluates.
        The merged result is sorted by contributor name, so the order is
        deterministic regardless of shard count or thread completion
        order.

        Returns ``(records, shard_stats)`` with ``shard_stats`` keyed by
        host: ``{"Contributors": n, "Matched": n, "Errors": n}``.
        """
        by_host: dict[str, list] = {}
        for record in self.registry.all():
            by_host.setdefault(record.host, []).append(record)

        def scan(partition: list) -> tuple:
            matched, errors = [], 0
            for record in partition:
                try:
                    if self.matches(record, criteria):
                        matched.append(record)
                except SensorSafeError:
                    errors += 1  # fail closed: unevaluable mirror, no match
            return matched, errors

        hosts = sorted(by_host)
        results: dict[str, tuple] = {}
        if len(hosts) <= 1:
            for host in hosts:
                results[host] = scan(by_host[host])
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(len(hosts), max(1, int(max_workers)))
            ) as pool:
                futures = {host: pool.submit(scan, by_host[host]) for host in hosts}
                for host in hosts:
                    results[host] = futures[host].result()
        matches: list = []
        stats: dict[str, dict] = {}
        for host in hosts:
            matched, errors = results[host]
            matches.extend(matched)
            stats[host] = {
                "Contributors": len(by_host[host]),
                "Matched": len(matched),
                "Errors": errors,
            }
        matches.sort(key=lambda r: r.name)
        return matches, stats

    @staticmethod
    def _probe_location(
        record: ContributorRecord, criteria: SearchCriteria
    ) -> Optional[LatLon]:
        if criteria.location_label is not None:
            place = record.places.get(criteria.location_label)
            if place is None:
                return None
            return place.region.bounding_box().center()
        # No location requested: probe at any of the contributor's places
        # (their data is captured where they live), or a neutral point.
        for place in record.places.values():
            return place.region.bounding_box().center()
        return LatLon(0.0, 0.0)

    @staticmethod
    def _probe_segment(
        contributor: str,
        channels: tuple,
        instant: int,
        location: Optional[LatLon],
        context: dict,
    ) -> WaveSegment:
        names = channels or ("AccelX",)
        values = np.zeros((4, len(names)))
        return WaveSegment(
            contributor=contributor,
            channels=tuple(names),
            start_ms=instant,
            interval_ms=1000,
            values=values,
            location=location,
            context=dict(context),
        )
