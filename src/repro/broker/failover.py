"""Broker-driven failure detection, promotion, and epoch fencing.

The broker is the natural failure detector and directory for replicated
stores: it already holds a key at every store, mirrors every
contributor's rule version, and answers "which host serves contributor
X" for consumers.  This module adds the missing control loop:

* :meth:`FailoverManager.register_set` pairs a primary with its replicas
  and wires WAL shipping (:mod:`repro.storage.replication`);
* :meth:`FailoverManager.heartbeat` probes every member's ``/api/health``
  over the real (simulated, faultable) network and pumps the primary's
  shipper — the broker tick is the replication tick;
* after ``miss_threshold`` consecutive failed probes of a primary,
  :meth:`FailoverManager.failover` promotes the most-caught-up reachable
  replica at a **bumped store epoch**, best-effort demotes the old
  primary, re-homes the contributor directory, force-pulls the promoted
  store's profiles, and re-registers escrowed consumers there.

Safety properties, in order of precedence:

1. **Fencing** — the epoch only moves forward.  A demoted primary that
   missed the news has its WAL ships answered with 409 and demotes
   itself; its clients' writes bounce with
   :class:`~repro.exceptions.NotPrimaryError` and re-resolve here.
2. **Fail closed** — promotion passes the broker's mirrored rule
   versions to the new primary; any contributor whose replicated rules
   lag that mirror is denied by default until their owner re-publishes
   (same contract as crash recovery).  If no replica is reachable there
   is *no* promotion: the set stays down rather than serving stale.
3. **Progress** — among reachable replicas the one with the highest
   applied LSN wins (ties break on host name for determinism), which
   under semi-sync shipping makes committed-write loss zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.auth.accounts import ROLE_CONSUMER
from repro.exceptions import OverloadedError, SensorSafeError, TransportError
from repro.net.client import HttpClient

#: Consecutive missed health probes before a primary is declared dead.
DEFAULT_MISS_THRESHOLD = 2


@dataclass
class ReplicaSet:
    """One replicated store group, from the broker's point of view."""

    name: str
    primary: str
    replicas: list = field(default_factory=list)
    #: host -> in-process DataStoreService handle.  The broker is the
    #: deployment's directory; in the simulation it also holds the
    #: service handles it uses to wire shipping links at setup time.
    services: dict = field(default_factory=dict)
    mode: str = "async"
    min_acks: int = 1
    epoch: int = 1
    missed: dict = field(default_factory=dict)  # host -> consecutive misses
    demoted: list = field(default_factory=list)  # fenced ex-primaries
    failovers: int = 0

    def members(self) -> list:
        """Every live member of the set, primary first."""
        return [self.primary] + list(self.replicas)


class FailoverManager:
    """Health checking and primary election for the broker's replica sets."""

    def __init__(self, broker, *, miss_threshold: int = DEFAULT_MISS_THRESHOLD):
        self.broker = broker
        self.miss_threshold = max(1, int(miss_threshold))
        self.sets: dict[str, ReplicaSet] = {}
        #: probe client: no retry policy and no breakers, so detection
        #: latency is one probe and circuit state never masks a probe.
        self._probe = HttpClient(broker.network, name=broker.host)
        #: Trace-stamped promotion/rejoin audit records, newest last.
        #: Surfaced via /api/replicas/status and the fleet snapshot so an
        #: operator can jump from "who promoted when" to the exact trace.
        self.events: list = []
        obs = broker.network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_heartbeats = m.counter("failover_heartbeats_total")
            self._c_failovers = m.counter("failover_promotions_total")
            self._c_noquorum = m.counter("failover_no_candidate_total")
        else:
            self._c_heartbeats = None
            self._c_failovers = None
            self._c_noquorum = None

    # ------------------------------------------------------------------
    # Set construction
    # ------------------------------------------------------------------

    def register_set(
        self,
        primary,
        replicas,
        *,
        name: Optional[str] = None,
        mode: str = "async",
        min_acks: int = 1,
    ) -> ReplicaSet:
        """Pair a primary with its replicas and start WAL shipping.

        Every member is broker-paired (the broker needs keys everywhere:
        health probes, promotion/demotion authority, post-failover
        profile pulls), replicas are demoted, and the primary's shipper
        gets one authenticated link per replica.  The initial pump ships
        the backfilled generation so replicas converge immediately.
        """
        set_name = name or primary.host
        if set_name in self.sets:
            raise SensorSafeError(f"replica set already registered: {set_name!r}")
        group = ReplicaSet(
            name=set_name,
            primary=primary.host,
            mode=mode,
            min_acks=min_acks,
            epoch=primary.epoch,
        )
        group.services[primary.host] = primary
        if primary.host not in self.broker.store_keys:
            self.broker.attach_store(primary)
        shipper = primary.enable_replication(mode, min_acks=min_acks)
        for replica in replicas:
            group.services[replica.host] = replica
            group.replicas.append(replica.host)
            if replica.host not in self.broker.store_keys:
                self.broker.attach_store(replica)
            replica.demote(group.epoch)
            self._link(shipper, primary.host, replica)
        for host in group.members():
            group.missed[host] = 0
        shipper.pump()
        if self.obs is not None:
            self.obs.metrics.gauge(
                "replica_set_epoch",
                callback=lambda g=group: g.epoch,
                set=set_name,
            )
        self.sets[set_name] = group
        return group

    def _link(self, shipper, primary_host: str, replica) -> None:
        """Wire one authenticated shipping link primary -> replica."""
        ship_key = replica.pair_primary()
        client = HttpClient(
            self.broker.network, name=primary_host, api_key=ship_key
        )
        shipper.attach(replica.host, client)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    def _health(self, host: str) -> Optional[dict]:
        """One ``/api/health`` probe; None when the host missed it."""
        key = self.broker.store_keys.get(host)
        try:
            return self._probe.with_key(key).post(f"https://{host}/api/health", {})
        except OverloadedError:
            # Explicit backpressure is an *answer*: the host is alive and
            # shedding by design.  Overload must never read as death —
            # promoting away from a busy primary would turn every brownout
            # into a failover storm.  (Health probes are control-class and
            # rarely shed; metrics scrapes are lowest priority and the
            # fleet aggregator tombstones those on its own.)
            return {"Host": host, "Overloaded": True}
        except (TransportError, SensorSafeError):
            # Unreachable, erroring, or re-keyed after a restart: all
            # count as a miss — a primary we cannot authoritatively probe
            # is a primary we cannot vouch for.
            return None

    def heartbeat(self) -> dict:
        """Probe every member of every set; fail over dead primaries.

        Returns a per-set report.  The primary's shipper is pumped only
        when its probe *succeeded*: the broker never drives I/O on behalf
        of a store it just observed to be dead or unreachable.
        """
        if self._c_heartbeats is not None:
            self._c_heartbeats.inc()
        slo = self.broker.network.obs.slo
        report = {}
        for name, group in sorted(self.sets.items()):
            health = {}
            for host in group.members():
                probe = self._health(host)
                if probe is None:
                    group.missed[host] = group.missed.get(host, 0) + 1
                    if host == group.primary:
                        # First miss anchors the failover-detection SLO.
                        slo.primary_missed(name)
                else:
                    group.missed[host] = 0
                    if host == group.primary:
                        slo.primary_alive(name)
                health[host] = {
                    "Alive": probe is not None,
                    "Missed": group.missed[host],
                    "AppliedLsn": (probe or {}).get("AppliedLsn", 0),
                }
            primary_svc = group.services.get(group.primary)
            failed_over = None
            if group.missed.get(group.primary, 0) >= self.miss_threshold:
                failed_over = self.failover(name)
            elif (
                health[group.primary]["Alive"]
                and primary_svc is not None
                and primary_svc.replication is not None
                and primary_svc.is_primary
            ):
                primary_svc.replication.pump()
            report[name] = {
                "Primary": group.primary,
                "Epoch": group.epoch,
                "Health": health,
                "FailedOver": failed_over,
            }
        # The broker tick is also the fleet-telemetry tick: scrape every
        # fleet.interval_ms of simulated time (no-op between intervals).
        fleet = getattr(self.broker, "fleet", None)
        if fleet is not None:
            fleet.maybe_scrape()
        return report

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------

    def _replication_status(self, host: str) -> Optional[dict]:
        key = self.broker.store_keys.get(host)
        try:
            return self._probe.with_key(key).post(
                f"https://{host}/api/replicate/status", {}
            )
        except (TransportError, SensorSafeError):
            return None

    def _record_event(self, event: str, name: str, host, epoch: int,
                      trace_id: str, **extra) -> dict:
        """Append one trace-stamped failover audit record."""
        record = {
            "Event": event,
            "Set": name,
            "Host": host,
            "Epoch": int(epoch),
            "AtMs": int(self.broker.network.clock.now_ms()),
            "TraceId": trace_id,
            **extra,
        }
        self.events.append(record)
        return record

    def failover(self, name: str) -> dict:
        """Promote the most-caught-up reachable replica of one set.

        Returns a report; when no replica answers, nothing is promoted
        and the directory is left untouched (requests keep failing until
        a member returns — unavailability is the fail-closed outcome).
        The whole election runs inside a ``failover.promote`` span, and
        the returned report (and audit record) carries its trace id.
        """
        tracer = self.broker.network.obs.tracer
        with tracer.start_span("failover.promote", set=name) as span:
            report = self._failover(name, span)
        return report

    def _failover(self, name: str, span) -> dict:
        group = self.sets[name]
        old_primary = group.primary
        candidates = []
        highest_epoch = group.epoch
        for host in group.replicas:
            status = self._replication_status(host)
            if status is None:
                continue
            highest_epoch = max(highest_epoch, int(status.get("Epoch", 0)))
            applier = status.get("Applier") or {}
            candidates.append((int(applier.get("AppliedLsn", 0)), host))
        if not candidates:
            if self._c_noquorum is not None:
                self._c_noquorum.inc()
            self._record_event("no-candidate", name, None, group.epoch,
                               span.trace_id, OldPrimary=old_primary)
            return {"Promoted": None, "Reason": "no reachable replica"}
        # Highest applied LSN wins; ties break on host name so two
        # brokers (or two runs) elect identically.
        candidates.sort(key=lambda c: (-c[0], c[1]))
        new_epoch = highest_epoch + 1
        versions = {
            record.name: record.rules_version
            for record in self.broker.registry.on_host(old_primary)
        }
        promoted = None
        promotion = None
        for _lsn, host in candidates:
            key = self.broker.store_keys.get(host)
            try:
                promotion = self._probe.with_key(key).post(
                    f"https://{host}/api/promote",
                    {"Epoch": new_epoch, "RuleVersions": versions},
                )
            except (TransportError, SensorSafeError):
                continue  # candidate died between probe and promote: next
            promoted = host
            break
        if promoted is None:
            if self._c_noquorum is not None:
                self._c_noquorum.inc()
            self._record_event("no-candidate", name, None, group.epoch,
                               span.trace_id, OldPrimary=old_primary)
            return {"Promoted": None, "Reason": "every candidate refused promotion"}
        # Fence the old primary if it still answers; if not, its next WAL
        # ship is rejected at the new epoch and it demotes itself.
        old_key = self.broker.store_keys.get(old_primary)
        try:
            self._probe.with_key(old_key).post(
                f"https://{old_primary}/api/demote", {"Epoch": new_epoch}
            )
        except (TransportError, SensorSafeError):
            pass
        group.epoch = new_epoch
        group.primary = promoted
        group.replicas = [h for h in group.replicas if h != promoted]
        group.demoted.append(old_primary)
        group.missed[promoted] = 0
        group.failovers += 1
        self._rewire(group)
        # Through the directory, not the raw registry: a failover is a
        # route change, and every route change bumps the routing epoch so
        # clients' cached (host, epoch) pairs date themselves.
        moved = self.broker.directory.repoint(old_primary, promoted)
        # Converge the mirror with the promoted store: fencing denies
        # carry bumped versions and must win; force-pull makes the store
        # the authority exactly as restart reconciliation does.
        self.broker.sync.reconcile_host(
            self.broker.client, promoted, self.broker.store_keys
        )
        reregistered = self._reregister_consumers(old_primary, promoted)
        if self._c_failovers is not None:
            self._c_failovers.inc()
        detection_ms = self.broker.network.obs.slo.failover_completed(name)
        span.set_attributes(promoted=promoted, old_primary=old_primary,
                            epoch=new_epoch)
        self._record_event("promote", name, promoted, new_epoch, span.trace_id,
                           OldPrimary=old_primary, DetectionMs=detection_ms)
        return {
            "Promoted": promoted,
            "OldPrimary": old_primary,
            "Epoch": new_epoch,
            "Repointed": moved,
            "ConsumersReRegistered": reregistered,
            "FailClosed": list((promotion or {}).get("FailClosed", [])),
            "TraceId": span.trace_id,
            "DetectionMs": detection_ms,
        }

    def _rewire(self, group: ReplicaSet) -> None:
        """Point surviving replicas' shipping links at the new primary.

        With no surviving replica the new primary ships to nobody — and
        deliberately does *not* enable semi-sync shipping, which with
        zero reachable replicas would reject every write.
        """
        primary = group.services.get(group.primary)
        if primary is None or primary.durability is None or not group.replicas:
            return
        shipper = primary.enable_replication(group.mode, min_acks=group.min_acks)
        shipper.fenced = False
        shipper.backfill()
        for host in group.replicas:
            replica = group.services.get(host)
            if replica is None:
                continue
            if host not in shipper.links:
                self._link(shipper, group.primary, replica)
        shipper.pump()

    def _reregister_consumers(self, old_host: str, new_host: str) -> int:
        """Escrowed consumers of the old primary get keys at the new one.

        Membership (study groups) is re-pushed too, so group-based
        Consumer conditions evaluate identically after the handover.
        Unreachable-at-the-moment registrations are skipped; the consumer
        client re-resolves and re-registers lazily on first use.
        """
        broker = self.broker
        count = 0
        for consumer in broker.escrow.consumers_for(old_host):
            if broker.escrow.key_for(consumer, new_host) is not None:
                continue
            groups = sorted(broker._membership(consumer) - {consumer})
            try:
                body = broker.client.post(
                    f"https://{new_host}/api/register",
                    {"Username": consumer, "Role": ROLE_CONSUMER},
                )
                broker.escrow.store_key(consumer, new_host, str(body["ApiKey"]))
                broker_key = broker.store_keys.get(new_host)
                if broker_key is not None and groups:
                    broker.client.with_key(broker_key).post(
                        f"https://{new_host}/api/membership/set",
                        {"Consumer": consumer, "Groups": groups},
                    )
                count += 1
            except (TransportError, SensorSafeError):
                continue
        return count

    # ------------------------------------------------------------------
    # Rejoin (a fenced ex-primary or repaired replica returns)
    # ------------------------------------------------------------------

    def rejoin(self, name: str, service) -> dict:
        """Bring a returned store back into a set as a replica.

        The store is re-paired (a restart rotated its keys), demoted at
        the current epoch, and linked into the current primary's shipper
        with resync semantics — its divergent, fenced history is replaced
        by an idempotent replay of the primary's generation.
        """
        tracer = self.broker.network.obs.tracer
        with tracer.start_span("failover.rejoin", set=name,
                               host=service.host) as span:
            return self._rejoin(name, service, span)

    def _rejoin(self, name: str, service, span) -> dict:
        group = self.sets[name]
        self.broker.attach_store(service)
        service.demote(group.epoch)
        group.services[service.host] = service
        if service.host in group.demoted:
            group.demoted.remove(service.host)
        if service.host not in group.replicas and service.host != group.primary:
            group.replicas.append(service.host)
        group.missed[service.host] = 0
        primary = group.services.get(group.primary)
        if primary is not None and primary.durability is not None:
            shipper = primary.enable_replication(group.mode, min_acks=group.min_acks)
            shipper.detach(service.host)  # drop any stale link/key
            self._link(shipper, group.primary, service)
            # An existing shipper's buffer has been trimmed to what the
            # surviving replicas still need; the rejoiner's resync must
            # replay the whole generation, so re-seed it from the on-disk
            # WAL first (exactly as _rewire does after a promotion).
            shipper.backfill()
            shipper.pump()
        self._record_event("rejoin", name, service.host, group.epoch,
                           span.trace_id)
        return {"Rejoined": service.host, "Epoch": group.epoch, "Set": name,
                "TraceId": span.trace_id}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Every set's topology and health, for the CLI and the API."""
        return {
            name: {
                "Primary": group.primary,
                "Replicas": sorted(group.replicas),
                "Demoted": sorted(group.demoted),
                "Mode": group.mode,
                "MinAcks": group.min_acks,
                "Epoch": group.epoch,
                "Failovers": group.failovers,
                "Missed": dict(sorted(group.missed.items())),
            }
            for name, group in sorted(self.sets.items())
        }
