"""Rule synchronization between remote data stores and the broker.

Section 5.2: "The broker locally stores all privacy rules of every user on
remote data stores to search through them.  Whenever data contributors
change their privacy rules, remote data stores automatically communicate
with the broker to synchronize the privacy rules."

Two composable modes:

* **eager push** — the store's :class:`~repro.rules.rulestore.RuleStore`
  fires on every mutation and posts the contributor's profile to the
  broker immediately (low staleness, one message per edit);
* **periodic pull** — the broker polls each store's profile endpoint
  (bounded staleness, constant message rate regardless of edit rate).

The C5 ablation compares the two on staleness vs. sync traffic.  Profile
versions make the modes idempotent and safely concurrent.

Cache interaction: sync only ever copies rule state *out of* a store —
the broker's mirror is read-only search state, and nothing here writes
back into a store's :class:`~repro.rules.rulestore.RuleStore`.  Every
path that *does* change store-side rules (owner edits via API or web UI,
and recovery's :meth:`~repro.rules.rulestore.RuleStore.restore`) advances
the store-wide ``rules_version`` epoch, so the release cache
(:mod:`repro.datastore.cache`) never needs a hook in the sync protocol:
any state a push or pull can observe was already keyed to a fresh epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.broker.registry import ContributorRegistry
from repro.exceptions import SchemaError, ServiceError, TransportError
from repro.net.client import HttpClient
from repro.rules.parser import rules_from_json
from repro.util.geo import LabeledPlace


@dataclass
class SyncStats:
    """Instrumentation for the C5 sync-mode ablation and C7 fault runs."""

    pushes_received: int = 0
    pulls_performed: int = 0
    applied: int = 0
    stale_dropped: int = 0
    #: contributors skipped because the broker holds no key for their store.
    skipped_no_key: int = 0
    #: pulls that failed outright (transport or service error).
    pull_failures: int = 0
    #: contributors skipped because their store already failed this round.
    skipped_broken_host: int = 0
    #: previously-stale contributors whose pull succeeded again.
    recovered: int = 0
    #: failed pulls per store host, across the manager's lifetime.
    host_failures: dict = field(default_factory=dict)
    #: wall-clock ms the most recent pull round spent per store host —
    #: the per-host timing breakdown that shows which shard stalls a pull.
    host_pull_ms: dict = field(default_factory=dict)


class SyncManager:
    """Applies contributor profiles to the broker's registry."""

    def __init__(self, registry: ContributorRegistry, *, obs=None):
        self.registry = registry
        self.stats = SyncStats()
        #: contributors whose most recent pull attempt failed; retried (and
        #: on success counted as recovered) by the next pull round.
        self._stale: set[str] = set()
        # Observability (repro.obs.Observability): sync counters mirror
        # SyncStats into the shared registry so /api/metrics sees them.
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_pulls = m.counter("sync_pulls_total")
            self._c_pushes = m.counter("sync_pushes_total")
            self._c_applied = m.counter("sync_profiles_applied_total")
            self._c_stale = m.counter("sync_stale_dropped_total")
            self._c_failures = m.counter("sync_pull_failures_total")
            self._c_skipped = m.counter("sync_skipped_total")
            self.obs.metrics.gauge(
                "sync_stale_contributors", callback=lambda: len(self._stale)
            )
        else:
            self._c_pulls = None

    def stale_contributors(self) -> list[str]:
        """Contributors whose broker-side rule mirror may be outdated."""
        return sorted(self._stale)

    def apply_profile(
        self, profile: dict, *, via_pull: bool = False, force: bool = False
    ) -> bool:
        """Apply one profile JSON (from a push or a pull); False if stale."""
        try:
            name = str(profile["Contributor"])
            version = int(profile["Version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed sync profile: {profile!r}") from exc
        rules = rules_from_json(profile.get("Rules", []))
        places = [LabeledPlace.from_json(p) for p in profile.get("Places", [])]
        if via_pull:
            self.stats.pulls_performed += 1
        else:
            self.stats.pushes_received += 1
        applied = self.registry.update_profile(
            name,
            version=version,
            rules=rules,
            places=places,
            host=profile.get("Host"),
            institution=profile.get("Institution"),
            force=force,
        )
        if applied:
            self.stats.applied += 1
        else:
            self.stats.stale_dropped += 1
        if self._c_pulls is not None:
            (self._c_pulls if via_pull else self._c_pushes).inc()
            (self._c_applied if applied else self._c_stale).inc()
        return applied

    def pull(
        self,
        client: HttpClient,
        contributor: str,
        store_key: str,
        *,
        force: bool = False,
    ) -> bool:
        """Pull one contributor's profile from their store and apply it.

        ``client`` must be bound to the broker's network identity;
        ``store_key`` is the broker's API key at that store.
        """
        record = self.registry.get(contributor)
        body = client.with_key(store_key).post(
            f"https://{record.host}/api/profile", {"Contributor": contributor}
        )
        return self.apply_profile(body, via_pull=True, force=force)

    def pull_all(
        self,
        client: HttpClient,
        store_keys: dict,
        *,
        deadline_ms: int = 10_000,
    ) -> int:
        """Pull every registered contributor; returns profiles applied.

        Fans out *per shard*: contributors are grouped by store host and
        each host answers one bulk ``/api/profiles`` request under a
        ``deadline_ms`` budget, so a slow or dead shard costs the round
        one bounded request instead of stalling it host-by-host (the
        pre-sharding behavior pulled one profile at a time and a single
        slow host serialized everything behind it).

        Per-shard partial-failure accounting: a shard that fails its bulk
        pull is charged one failure, its remaining contributors are
        counted ``skipped_broken_host`` and marked stale rather than
        hammered, and every *other* shard still pulls.  Contributors left
        stale by an earlier round are retried — and counted as recovered —
        once their shard answers again.  Per-host wall time lands in
        :attr:`SyncStats.host_pull_ms` and the ``sync_host_pull_ms``
        histogram.
        """
        import time

        by_host: dict[str, list] = {}
        for name in self.registry.names():
            by_host.setdefault(self.registry.get(name).host, []).append(name)
        applied = 0
        for host in sorted(by_host):
            names = by_host[host]
            key = store_keys.get(host)
            if key is None:
                self.stats.skipped_no_key += len(names)
                if self._c_pulls is not None:
                    self._c_skipped.inc(len(names))
                continue
            started = time.perf_counter()
            try:
                body = client.with_key(key).post(
                    f"https://{host}/api/profiles",
                    {"Contributors": names},
                    deadline_ms=deadline_ms,
                )
            except (TransportError, ServiceError):
                self._observe_host_ms(host, started)
                # One charged failure for the shard; the rest of its
                # contributors are skipped, all of them go stale.
                self.stats.pull_failures += 1
                self.stats.host_failures[host] = (
                    self.stats.host_failures.get(host, 0) + 1
                )
                self.stats.skipped_broken_host += len(names) - 1
                self._stale.update(names)
                if self._c_pulls is not None:
                    self._c_failures.inc()
                    if len(names) > 1:
                        self._c_skipped.inc(len(names) - 1)
                continue
            self._observe_host_ms(host, started)
            missing = set(str(m) for m in body.get("Missing", []))
            for profile in body.get("Profiles", []):
                name = str(profile.get("Contributor", ""))
                fresh = self.apply_profile(profile, via_pull=True)
                if name in self._stale:
                    self._stale.discard(name)
                    self.stats.recovered += 1
                if fresh:
                    applied += 1
            for name in names:
                if name in missing:
                    # Unknown (or migrated away) at the shard we asked:
                    # stale until the directory repoints and re-pulls.
                    self.stats.pull_failures += 1
                    self._stale.add(name)
                    if self._c_pulls is not None:
                        self._c_failures.inc()
        return applied

    def _observe_host_ms(self, host: str, started: float) -> None:
        import time

        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.stats.host_pull_ms[host] = elapsed_ms
        if self.obs is not None:
            self.obs.metrics.histogram("sync_host_pull_ms", store=host).observe(
                elapsed_ms
            )

    def reconcile_host(self, client: HttpClient, host: str, store_keys: dict) -> dict:
        """Re-pull every contributor of one store after it restarts.

        A store that crashed between acknowledging a rule change and the
        eager push reaching the broker leaves the two sides divergent;
        the store's recovery may also have *fail-closed* contributors
        (bumped version, empty rules).  The store is the authority for its
        own contributors, so these pulls are applied with ``force=True``:
        the mirror adopts the store's post-recovery state even when a
        fail-closed recovery left it at a lower version than the mirror —
        a mirror shadowing rules the store no longer trusts would show
        consumers matches the store will deny.

        Returns ``{"pulled": n, "applied": n, "failed": n}``.
        """
        key = store_keys.get(host)
        if key is None:
            raise ServiceError(f"no broker key for store host {host!r}", status=404)
        out = {"pulled": 0, "applied": 0, "failed": 0}
        for name in self.registry.names():
            if self.registry.get(name).host != host:
                continue
            try:
                fresh = self.pull(client, name, key, force=True)
            except (TransportError, ServiceError):
                self.stats.pull_failures += 1
                self._stale.add(name)
                out["failed"] += 1
                if self._c_pulls is not None:
                    self._c_failures.inc()
                continue
            out["pulled"] += 1
            if name in self._stale:
                self._stale.discard(name)
                self.stats.recovered += 1
            if fresh:
                out["applied"] += 1
        return out
