"""Broker-side registries: contributors, their stores, and studies.

"The broker stores every data contributor's identity and the IP address of
the associated remote data store" — here the store's network host name —
plus the locally mirrored privacy rules and places that power search.
Studies group consumers (coordinators) so a single Consumer condition like
``'Study': 'stress-study'`` can cover a whole research team.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import ConflictError, NotFoundError
from repro.rules.model import Rule
from repro.util.geo import LabeledPlace


@dataclass
class ContributorRecord:
    """Everything the broker knows about one data contributor."""

    name: str
    host: str
    institution: str = "self-hosted"
    rules_version: int = 0
    rules: tuple = ()
    places: dict = field(default_factory=dict)  # label -> LabeledPlace


class ContributorRegistry:
    """Contributor identity -> remote data store, rules mirror, places."""

    def __init__(self) -> None:
        self._records: dict[str, ContributorRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def register(self, name: str, host: str, institution: str = "self-hosted") -> ContributorRecord:
        if name in self._records:
            raise ConflictError(f"contributor already registered: {name!r}")
        record = ContributorRecord(name=name, host=host, institution=institution)
        self._records[name] = record
        return record

    def get(self, name: str) -> ContributorRecord:
        record = self._records.get(name)
        if record is None:
            raise NotFoundError(f"unknown contributor: {name!r}")
        return record

    def all(self) -> list:
        return [self._records[name] for name in sorted(self._records)]

    def names(self) -> list:
        return sorted(self._records)

    def update_profile(
        self,
        name: str,
        *,
        version: int,
        rules: Iterable[Rule],
        places: Iterable[LabeledPlace],
        host: Optional[str] = None,
        institution: Optional[str] = None,
        force: bool = False,
    ) -> bool:
        """Apply a synced profile; returns False when it was stale.

        Version monotonicity makes eager pushes and periodic pulls safely
        composable: whichever arrives later with an older version is a
        no-op.  ``force`` overrides the staleness check — used by restart
        reconciliation, where the store (the authority for its own
        contributors) may legitimately report a *lower* version after a
        fail-closed recovery discarded untrusted rule state; the mirror
        must follow the authority, not shadow lost rules forever.
        """
        record = self.get(name)
        if version < record.rules_version and not force:
            return False
        record.rules_version = version
        record.rules = tuple(rules)
        record.places = {p.label: p for p in places}
        if host is not None:
            record.host = host
        if institution is not None:
            record.institution = institution
        return True

    def on_host(self, host: str) -> list:
        """Records of every contributor whose store is ``host``, sorted."""
        return [r for r in self.all() if r.host == host]

    def repoint_host(self, old_host: str, new_host: str) -> int:
        """Re-home every contributor from one store host to another.

        The failover path: after a replica is promoted, the directory must
        answer searches and key requests with the new primary.  Returns
        the number of records moved.
        """
        moved = 0
        for record in self._records.values():
            if record.host == old_host:
                record.host = new_host
                moved += 1
        return moved


class StudyRegistry:
    """Named studies: coordinator consumers and participant contributors."""

    def __init__(self) -> None:
        self._coordinators: dict[str, set] = {}
        self._participants: dict[str, set] = {}

    def create(self, study: str, coordinators: Iterable[str] = ()) -> None:
        if study in self._coordinators:
            raise ConflictError(f"study already exists: {study!r}")
        self._coordinators[study] = set(coordinators)
        self._participants[study] = set()

    def studies(self) -> list:
        return sorted(self._coordinators)

    def add_coordinator(self, study: str, consumer: str) -> None:
        self._require(study)
        self._coordinators[study].add(consumer)

    def add_participant(self, study: str, contributor: str) -> None:
        self._require(study)
        self._participants[study].add(contributor)

    def coordinators_of(self, study: str) -> frozenset:
        self._require(study)
        return frozenset(self._coordinators[study])

    def participants_of(self, study: str) -> frozenset:
        self._require(study)
        return frozenset(self._participants[study])

    def studies_of_consumer(self, consumer: str) -> frozenset:
        """Study names a consumer coordinates — their extra principals."""
        return frozenset(
            study for study, members in self._coordinators.items() if consumer in members
        )

    def _require(self, study: str) -> None:
        if study not in self._coordinators:
            raise NotFoundError(f"unknown study: {study!r}")
