"""The broker: contributor management and searching (paper Section 5.2).

The broker is the dedicated server that makes a *distributed* fleet of
remote data stores manageable: it maps every contributor to their store,
escrows the per-store API keys it obtains when auto-registering consumers,
keeps a synchronized copy of every contributor's privacy rules, and
answers contributor-search queries ("who shares ECG and respiration at
'work', 9am-6pm weekdays?") by evaluating the *actual rule engine* against
synthetic probes — so search results agree exactly with what the stores
will later enforce.
"""

from repro.broker.registry import ContributorRecord, ContributorRegistry, StudyRegistry
from repro.broker.search import ContributorSearch, SearchCriteria
from repro.broker.sync import SyncManager

__all__ = [
    "ContributorRecord",
    "ContributorRegistry",
    "StudyRegistry",
    "ContributorSearch",
    "SearchCriteria",
    "SyncManager",
]
