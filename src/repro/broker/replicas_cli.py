"""``python -m repro replicas`` — replicated-store demo and failover drill.

Builds a miniature replicated deployment (one primary, ``--replicas``
replicas, broker-driven health checks), streams a small workload through
it, and prints the replica-set topology the broker's
``/api/replicas/status`` endpoint exposes.  With ``--drill`` it then
kills the primary, lets the broker detect and promote, and verifies the
replication contract end to end:

* the most-caught-up replica is promoted at a bumped epoch;
* in semi-sync mode, every acknowledged sample is readable afterwards;
* a revocation that only reached the broker's rules mirror fails closed
  on the promoted replica until the owner re-publishes.

Exits non-zero if any of those invariants break, so the command doubles
as an operator smoke test for the failover path.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile


def _topology_lines(status: dict) -> list:
    lines = []
    for name, group in status.items():
        lines.append(
            f"  set {name}: primary={group['Primary']} epoch={group['Epoch']} "
            f"mode={group['Mode']} min_acks={group['MinAcks']}"
        )
        for replica in group["Replicas"]:
            lines.append(f"    replica {replica}")
        for demoted in group["Demoted"]:
            lines.append(f"    demoted {demoted}")
        if group["Failovers"]:
            lines.append(f"    failovers so far: {group['Failovers']}")
    return lines


def _shipper_lines(primary) -> list:
    if primary.replication is None:
        return ["  (no shipper attached)"]
    status = primary.replication.status()
    lines = [f"  wal last_lsn={status['LastLsn']} fenced={status['Fenced']}"]
    for host, link in status["Replicas"].items():
        lines.append(
            f"    {host}: acked_lsn={link['AckedLsn']} lag={link['Lag']} "
            f"alive={link['Alive']}"
        )
    return lines


def main(argv: list) -> int:
    """Entry point for ``python -m repro replicas``; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro replicas",
        description="Replicated-store topology demo and failover drill.",
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="replicas per set (default 2)"
    )
    parser.add_argument(
        "--mode",
        choices=("semi-sync", "async"),
        default="semi-sync",
        help="WAL shipping ack mode (default semi-sync)",
    )
    parser.add_argument(
        "--segments", type=int, default=4, help="segments to commit (default 4)"
    )
    parser.add_argument(
        "--drill",
        action="store_true",
        help="kill the primary and verify detection, promotion, and fencing",
    )
    args = parser.parse_args(argv)

    # Imported lazily: the CLI must not drag the server stack into every
    # `import repro.broker`.
    import numpy as np

    from repro.core.system import SensorSafeSystem
    from repro.datastore.wavesegment import WaveSegment
    from repro.net.faults import FaultPlan
    from repro.rules.model import ALLOW, Rule
    from repro.util.geo import LatLon
    from repro.util.timeutil import timestamp_ms

    monday = timestamp_ms(2011, 2, 7)
    hour = 3_600_000
    failures = []

    def segment(i, n=32):
        return WaveSegment(
            contributor="alice",
            channels=("ECG",),
            start_ms=monday + i * hour,
            interval_ms=1000,
            values=np.arange(n, dtype=float).reshape(n, 1),
            location=LatLon(34.0689, -118.4452),
            context={"Activity": "Still", "Stress": "NotStressed"},
        )

    workdir = tempfile.mkdtemp(prefix="repro-replicas-")
    try:
        print("SensorSafe replica drill" if args.drill else "SensorSafe replica demo")
        print("========================")
        system = SensorSafeSystem(seed=6)
        primary = system.create_replicated_store(
            "alice-store",
            directory=workdir,
            n_replicas=args.replicas,
            mode=args.mode,
        )
        alice = system.add_contributor("alice", store=primary)
        bob = system.add_consumer("bob")
        bob.add_contributors(["alice"])
        alice.add_rule(Rule(consumers=("bob",), action=ALLOW))

        committed = 0
        for i in range(args.segments):
            alice.upload_segments([segment(i)])
            alice.flush()
            committed += 32
            system.clock.advance(2_000)
            system.broker.failover.heartbeat()
        print(f"  committed {committed} samples across {args.segments} segments")
        print("  topology:")
        for line in _topology_lines(system.broker.failover.status()):
            print(line)
        print("  shipping:")
        for line in _shipper_lines(primary):
            print(line)

        if not args.drill:
            print("  demo complete — OK (rerun with --drill to exercise failover)")
            return 0

        # The drill: a revocation the replicas never see, then a dead
        # primary.  The broker must promote the most-caught-up replica
        # and fail closed on the stale rules.
        from repro.exceptions import ReplicationError

        replica_hosts = {f"alice-store-r{i}" for i in range(1, args.replicas + 1)}
        plan = FaultPlan(seed=6)
        plan.add_partition("ship-lost", {"alice-store"}, replica_hosts)
        system.install_faults(plan)
        try:
            alice.replace_rules([])
            print("  revoked all of alice's rules (replicas partitioned away)")
        except ReplicationError as exc:
            # Semi-sync refuses a write no replica can ack — but the
            # primary and the broker's mirror have already adopted it, so
            # the stale replicas must still fail closed after promotion.
            print(f"  revocation ack refused by semi-sync barrier: {exc}")
        revoked = system.broker.registry.get("alice").rules_version >= 2
        system.network.unregister_host("alice-store")
        system.install_faults(None)
        print("  killed alice-store; waiting on broker heartbeats...")

        result = None
        beats = 0
        while result is None and beats < 10:
            system.clock.advance(2_000)
            beats += 1
            result = system.broker.failover.heartbeat()["alice-store"]["FailedOver"]
        if result is None:
            failures.append("broker never promoted a replica")
        else:
            print(
                f"  promoted {result['Promoted']} at epoch {result['Epoch']} "
                f"after {beats} heartbeat(s)"
            )
            if result["FailClosed"]:
                print(f"  fail-closed contributors: {sorted(result['FailClosed'])}")
            elif revoked:
                failures.append("stale-rules promotion did not fail closed")

        if revoked:
            released = bob.fetch("alice")
            if released:
                failures.append(
                    f"revoked data released post-failover ({len(released)} pieces)"
                )
            else:
                print("  bob's query against the promoted replica: denied — good")

        # The owner re-homes and re-publishes; data must flow again.
        system.repoint_contributor("alice")
        alice.replace_rules([Rule(consumers=("bob",), action=ALLOW)])
        readable = sum(
            len(p.segment.sample_times())
            for p in bob.fetch("alice")
            if p.segment is not None
        )
        print(f"  after re-publish: {readable}/{committed} committed samples readable")
        if args.mode == "semi-sync" and readable < committed:
            failures.append(
                f"semi-sync lost {committed - readable} acknowledged samples"
            )

        print("  post-drill topology:")
        for line in _topology_lines(system.broker.failover.status()):
            print(line)

        if failures:
            for failure in failures:
                print(f"  FAIL: {failure}")
            return 1
        print("  all replication invariants held — OK")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
