"""Exception hierarchy for the SensorSafe reproduction.

Every error raised by this package derives from :class:`SensorSafeError`, so
callers can catch one base class at API boundaries.  Service-layer errors
carry an HTTP-like status code so the in-process transport
(:mod:`repro.net`) can map them onto responses without string matching.
"""

from __future__ import annotations


class SensorSafeError(Exception):
    """Base class for all errors raised by this package."""


class ValidationError(SensorSafeError):
    """Malformed input: bad rule JSON, inconsistent wave segment, etc."""


class SchemaError(ValidationError):
    """A JSON document does not match the expected schema."""


class TimeRangeError(ValidationError):
    """An interval has end < start, or a repeated-time spec is malformed."""


class GeoError(ValidationError):
    """A geographic region or coordinate is malformed."""


class StorageError(SensorSafeError):
    """The embedded database failed (duplicate key, missing table, I/O)."""


class CorruptRecordError(StorageError):
    """A persisted record failed its integrity check (checksum, JSON, chain).

    Raised when durable state cannot be trusted; recovery routes the bad
    bytes to quarantine instead of silently dropping them, and fails
    closed for privacy rules (see :mod:`repro.storage.recovery`).
    """


class SimulatedCrashError(SensorSafeError):
    """A storage fault plan hit an armed crash point.

    The disk-side sibling of fault-injected network drops: the process is
    assumed to have died *at this exact point* — whatever bytes reached
    the file so far are what recovery will find.  Tests catch this, throw
    the in-memory service away, and restart from disk.
    """

    def __init__(self, point: str, hit: int = 0):
        super().__init__(f"simulated crash at storage point {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class DuplicateKeyError(StorageError):
    """Insert attempted with a primary key that already exists."""


class MissingRecordError(StorageError):
    """A lookup by primary key found nothing."""


class QueryError(SensorSafeError):
    """A data query is malformed or references unknown channels."""


class RuleError(SensorSafeError):
    """A privacy rule is malformed or references unknown options."""


class UnknownContextError(RuleError):
    """A rule references a context label missing from the registry."""


class UnknownChannelError(RuleError):
    """A rule or query references a sensor channel missing from the registry."""


class ServiceError(SensorSafeError):
    """Base for errors surfaced through the service/API layer."""

    #: HTTP-like status code attached to the response.
    status = 500

    def __init__(self, message: str = "", *, status: int | None = None):
        super().__init__(message or self.__class__.__doc__)
        if status is not None:
            self.status = status

    def body_fields(self) -> dict:
        """Extra JSON fields the transport adds to the error response body.

        Subclasses override to carry structured hints across the wire
        (e.g. :class:`OverloadedError`'s ``RetryAfterMs``); keys must not
        collide with ``Error``/``ErrorKind``.
        """
        return {}


class AuthenticationError(ServiceError):
    """Missing or invalid API key / login credentials."""

    status = 401


class AuthorizationError(ServiceError):
    """Authenticated principal lacks permission for the operation."""

    status = 403


class NotFoundError(ServiceError):
    """The requested resource does not exist."""

    status = 404


class ConflictError(ServiceError):
    """The request conflicts with existing state (duplicate registration)."""

    status = 409


class BadRequestError(ServiceError):
    """The request body or parameters are malformed."""

    status = 400


class TransportError(SensorSafeError):
    """The simulated network failed to deliver a request."""


class InsecureTransportError(TransportError):
    """An API key was sent over a channel without TLS enabled.

    The paper mandates that API keys travel only in HTTPS POST bodies
    (Section 5.4); the simulated transport enforces the same invariant.
    """


class NetworkUnavailableError(TransportError):
    """A request was dropped in transit (fault injection, partition, outage).

    The retryable transport failure: the request never reached the target
    host, so resending it is always safe.
    """


class CircuitOpenError(NetworkUnavailableError):
    """A circuit breaker is open for the target host; the call was not sent.

    Raised client-side by :class:`~repro.net.resilience.CircuitBreaker` to
    shed load from a host that keeps failing, until the reset timeout
    elapses and a half-open probe is allowed through.
    """


class DeadlineExceededError(TransportError):
    """A request's total time budget ran out before an attempt succeeded.

    Raised client-side by :class:`~repro.net.client.HttpClient` when
    ``deadline_ms`` elapses on the simulated clock across retry attempts
    (backoff included).  Deliberately *not* a
    :class:`NetworkUnavailableError`: an enclosing retry loop must not
    resurrect a call whose budget is spent.
    """


class OverloadedError(ServiceError):
    """The host shed this request to protect itself (admission control).

    The *fail-closed* overload outcome: an explicit, typed 503 emitted by
    :class:`~repro.net.overload.AdmissionController` before any rule
    evaluation ran — a loaded store degrades by refusing work cleanly,
    never by hurrying or truncating a release.  Carries a ``Retry-After``
    hint (``retry_after_ms``) that rides the response body as
    ``RetryAfterMs`` and is honored by the client's retry backoff and the
    phone's offline-queue drain.

    Deliberately distinct from a generic 500/503 for the circuit breaker:
    backpressure from a *live* host must not trip the breaker (the host
    answered; it is busy, not broken).
    """

    status = 503

    def __init__(self, message: str = "", *, status: int | None = None,
                 retry_after_ms: int = 0):
        super().__init__(message, status=status)
        self.retry_after_ms = max(0, int(retry_after_ms))

    def body_fields(self) -> dict:
        return {"RetryAfterMs": self.retry_after_ms}


class DeadlineExpiredError(ServiceError):
    """The request's propagated deadline expired before it could be served.

    The server-side sibling of :class:`DeadlineExceededError`: admission
    control read the ``X-Deadline-Ms`` header (remaining budget stamped by
    :class:`~repro.net.client.HttpClient`) and found the caller's budget
    smaller than the current queue wait — the caller would have given up
    before the answer arrived, so no capacity is burned on rule
    evaluation.  A typed 504: retrying cannot help (the budget only
    shrinks), so the client surfaces it without further attempts.
    """

    status = 504


class ReplicationError(ServiceError):
    """A replicated write could not be acknowledged by enough replicas.

    Raised on the primary in ``semi-sync`` mode when fewer than the
    required number of replicas acknowledged the shipped WAL frames: the
    write is rejected rather than acknowledged un-replicated, which is the
    trade that makes committed-write loss zero across a failover.
    """

    status = 503


class NotPrimaryError(ConflictError):
    """The store is a replica (or a fenced ex-primary) and refused the call.

    Writes and consumer reads are only served by the current primary of a
    replica set; a 409 (never retried blindly) tells the client to
    re-resolve the contributor's routing entry at the broker.
    """


class StaleEpochError(ConflictError):
    """A replication or write request carried an out-of-date store epoch.

    The fencing mechanism: after a failover the broker bumps the replica
    set's epoch, so a demoted primary that never heard the news has its
    WAL ships and writes rejected instead of silently forking history.
    """


class CollectionError(SensorSafeError):
    """The smartphone collection agent hit an unrecoverable condition."""
