"""JSON helpers: canonical encoding and strict decoding.

SensorSafe serializes privacy rules (Fig. 4) and wave segments (Fig. 5) as
JSON.  Canonical encoding (sorted keys, no whitespace variance) makes
byte-level equality meaningful, which the broker's rule-sync protocol uses
to detect changed rules cheaply.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import SchemaError


def dumps(obj: Any, *, indent: int | None = None) -> str:
    """Serialize to JSON; raises :class:`SchemaError` on unserializable input."""
    try:
        return json.dumps(obj, indent=indent, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"object is not JSON-serializable: {exc}") from exc


def canonical_dumps(obj: Any) -> str:
    """Serialize to canonical JSON: sorted keys, compact separators."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"object is not JSON-serializable: {exc}") from exc


def loads(text: str) -> Any:
    """Parse JSON; raises :class:`SchemaError` on malformed input."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"malformed JSON: {exc}") from exc


def require_keys(obj: dict, keys: tuple, *, where: str = "object") -> None:
    """Assert that ``obj`` is a dict containing every key in ``keys``."""
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected a JSON object, got {type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    if missing:
        raise SchemaError(f"{where}: missing required keys {missing}")


def require_type(value: Any, types, *, where: str = "value") -> Any:
    """Assert a value's type and return it (for chaining)."""
    if not isinstance(value, types):
        names = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise SchemaError(f"{where}: expected {names}, got {type(value).__name__}")
    return value
