"""Time intervals, repeated-time schedules, and timestamp abstraction.

SensorSafe's privacy rules constrain *when* data may be shared in two ways
(Table 1 of the paper): a continuous time range ("from Feb. 2011 to
Mar. 2011") or a repeated time ("3-6pm on every Wednesday").  Rules can also
*abstract* timestamps, rounding them down to hour/day/month/year granularity
before the data leaves the store.

All timestamps in this package are integer **epoch milliseconds, UTC**.
Sensor hardware emits integer millisecond stamps and the wave-segment format
(Fig. 5) stores a start time plus a sampling interval in the same unit, so
the whole stack shares one clock with no timezone ambiguity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Optional, Sequence

from repro.exceptions import TimeRangeError

#: Canonical weekday names used in rule JSON, Monday-first (ISO order).
WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")

_MS_PER_MINUTE = 60_000
_MS_PER_HOUR = 3_600_000
_MS_PER_DAY = 86_400_000

_HHMM_RE = re.compile(r"^\s*(\d{1,2}):(\d{2})\s*(am|pm)?\s*$", re.IGNORECASE)

#: Granularities accepted by :func:`truncate_timestamp`, coarsest last.
TIME_GRANULARITIES = ("milliseconds", "second", "minute", "hour", "day", "month", "year")


def _utc(ts_ms: int) -> datetime:
    return datetime.fromtimestamp(ts_ms / 1000.0, tz=timezone.utc)


def day_of_week(ts_ms: int) -> str:
    """Return the weekday name ("Mon".."Sun") of a UTC epoch-ms timestamp."""
    return WEEKDAY_NAMES[_utc(ts_ms).weekday()]


def minutes_since_midnight(ts_ms: int) -> int:
    """Return minutes elapsed since UTC midnight for an epoch-ms timestamp."""
    dt = _utc(ts_ms)
    return dt.hour * 60 + dt.minute


def parse_hhmm(text: str) -> int:
    """Parse a clock time like ``"9:00am"``, ``"18:30"`` into minutes.

    Returns minutes since midnight in ``[0, 1440)``.  Accepts 12-hour times
    with an am/pm suffix (the format the paper's Fig. 4 rule uses) and
    24-hour times without one.
    """
    match = _HHMM_RE.match(text)
    if not match:
        raise TimeRangeError(f"unparseable clock time: {text!r}")
    hour, minute = int(match.group(1)), int(match.group(2))
    suffix = (match.group(3) or "").lower()
    if minute >= 60:
        raise TimeRangeError(f"minute out of range in {text!r}")
    if suffix:
        if not 1 <= hour <= 12:
            raise TimeRangeError(f"12-hour clock hour out of range in {text!r}")
        hour = hour % 12
        if suffix == "pm":
            hour += 12
    elif hour >= 24:
        raise TimeRangeError(f"hour out of range in {text!r}")
    return hour * 60 + minute


def format_timestamp(ts_ms: int) -> str:
    """Render an epoch-ms timestamp as an ISO-8601 UTC string."""
    return _utc(ts_ms).strftime("%Y-%m-%dT%H:%M:%S.") + f"{ts_ms % 1000:03d}Z"


def timestamp_ms(
    year: int,
    month: int = 1,
    day: int = 1,
    hour: int = 0,
    minute: int = 0,
    second: int = 0,
    millisecond: int = 0,
) -> int:
    """Build an epoch-ms timestamp from UTC calendar fields."""
    dt = datetime(year, month, day, hour, minute, second, tzinfo=timezone.utc)
    return int(dt.timestamp() * 1000) + millisecond


def truncate_timestamp(ts_ms: int, granularity: str) -> int:
    """Round a timestamp down to ``granularity`` (time abstraction action).

    ``"milliseconds"`` is the identity; ``"year"`` keeps only the year.
    This implements the Time row of Table 1(b).
    """
    if granularity not in TIME_GRANULARITIES:
        raise TimeRangeError(f"unknown time granularity: {granularity!r}")
    if granularity == "milliseconds":
        return ts_ms
    dt = _utc(ts_ms)
    if granularity == "second":
        dt = dt.replace(microsecond=0)
    elif granularity == "minute":
        dt = dt.replace(second=0, microsecond=0)
    elif granularity == "hour":
        dt = dt.replace(minute=0, second=0, microsecond=0)
    elif granularity == "day":
        dt = dt.replace(hour=0, minute=0, second=0, microsecond=0)
    elif granularity == "month":
        dt = dt.replace(day=1, hour=0, minute=0, second=0, microsecond=0)
    else:  # year
        dt = dt.replace(month=1, day=1, hour=0, minute=0, second=0, microsecond=0)
    return int(dt.timestamp() * 1000)


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)`` in epoch milliseconds.

    Half-open intervals compose cleanly: two back-to-back wave segments
    cover ``[a, b)`` and ``[b, c)`` with no shared instant, which is what
    the segment merge optimizer relies on.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TimeRangeError(f"interval end {self.end} before start {self.start}")

    @property
    def duration_ms(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end == self.start

    def contains(self, ts_ms: int) -> bool:
        return self.start <= ts_ms < self.end

    def contains_interval(self, other: "Interval") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def is_adjacent(self, other: "Interval") -> bool:
        """True when the two intervals share exactly one boundary point."""
        return self.end == other.start or other.end == self.start

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def union_adjacent(self, other: "Interval") -> "Interval":
        """Merge two overlapping or adjacent intervals into one."""
        if not (self.overlaps(other) or self.is_adjacent(other)):
            raise TimeRangeError("cannot union disjoint, non-adjacent intervals")
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def to_json(self) -> dict:
        return {"Start": self.start, "End": self.end}

    @classmethod
    def from_json(cls, obj: dict) -> "Interval":
        try:
            return cls(int(obj["Start"]), int(obj["End"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise TimeRangeError(f"bad interval JSON: {obj!r}") from exc


def coalesce_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Sort and merge overlapping/adjacent intervals into a disjoint list."""
    merged: list[Interval] = []
    for iv in sorted(intervals):
        if merged and (merged[-1].overlaps(iv) or merged[-1].is_adjacent(iv)):
            merged[-1] = merged[-1].union_adjacent(iv)
        else:
            merged.append(iv)
    return merged


@dataclass(frozen=True)
class RepeatedTime:
    """A weekly repeating window: a set of weekdays and a clock-time range.

    Matches the paper's ``RepeatTime`` rule attribute (Fig. 4)::

        {'Day': ['Mon', ..., 'Fri'], 'HourMin': ['9:00am', '6:00pm']}

    The clock range is half-open ``[start, end)`` in minutes since UTC
    midnight.  A range whose end is at or before its start wraps past
    midnight (e.g. 10pm-6am); the weekday test applies to the timestamp's
    own day, matching how a user reads "10pm-6am on Fridays".
    """

    days: frozenset[str]
    start_minute: int
    end_minute: int

    def __post_init__(self) -> None:
        unknown = self.days - set(WEEKDAY_NAMES)
        if unknown:
            raise TimeRangeError(f"unknown weekday names: {sorted(unknown)}")
        if not self.days:
            raise TimeRangeError("RepeatedTime needs at least one weekday")
        for minute in (self.start_minute, self.end_minute):
            if not 0 <= minute <= 1440:
                raise TimeRangeError(f"minute-of-day out of range: {minute}")

    @classmethod
    def weekly(cls, days: Sequence[str], start: str, end: str) -> "RepeatedTime":
        """Build from weekday names and clock strings like ``"9:00am"``."""
        return cls(frozenset(days), parse_hhmm(start), parse_hhmm(end))

    def contains(self, ts_ms: int) -> bool:
        if day_of_week(ts_ms) not in self.days:
            return False
        minute = minutes_since_midnight(ts_ms)
        if self.start_minute < self.end_minute:
            return self.start_minute <= minute < self.end_minute
        # Wrapping window (or degenerate full-day when start == end == 0).
        if self.start_minute == self.end_minute:
            return True
        return minute >= self.start_minute or minute < self.end_minute

    def to_json(self) -> dict:
        def fmt(minute: int) -> str:
            hour, mm = divmod(minute % 1440, 60)
            suffix = "am" if hour < 12 else "pm"
            hour12 = hour % 12 or 12
            return f"{hour12}:{mm:02d}{suffix}"

        ordered = [d for d in WEEKDAY_NAMES if d in self.days]
        return {"Day": ordered, "HourMin": [fmt(self.start_minute), fmt(self.end_minute)]}

    @classmethod
    def from_json(cls, obj: dict) -> "RepeatedTime":
        try:
            days = obj["Day"]
            start, end = obj["HourMin"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TimeRangeError(f"bad RepeatTime JSON: {obj!r}") from exc
        return cls.weekly(days, start, end)


@dataclass(frozen=True)
class TimeCondition:
    """The time condition of a privacy rule: ranges and/or repeated windows.

    A timestamp matches when it falls in *any* listed interval or repeated
    window.  An empty condition matches every timestamp (the rule simply
    does not constrain time), mirroring how the paper's example rule in
    Fig. 4 omits the attribute entirely.
    """

    intervals: tuple[Interval, ...] = ()
    repeated: tuple[RepeatedTime, ...] = ()

    def is_unconstrained(self) -> bool:
        return not self.intervals and not self.repeated

    def contains(self, ts_ms: int) -> bool:
        if self.is_unconstrained():
            return True
        return any(iv.contains(ts_ms) for iv in self.intervals) or any(
            rt.contains(ts_ms) for rt in self.repeated
        )

    def contains_any(self, interval: Interval) -> bool:
        """Could any instant of ``interval`` match this condition?

        Used to prune whole wave segments before per-sample evaluation.
        Interval checks against repeated windows fall back to conservative
        truth (a day-long segment always *may* intersect a weekly window).
        """
        if self.is_unconstrained():
            return True
        if any(iv.overlaps(interval) for iv in self.intervals):
            return True
        if not self.repeated:
            return False
        if interval.duration_ms >= _MS_PER_DAY:
            return True
        # Sample the window boundaries plus endpoints: a repeated window
        # shorter than the probe spacing could in principle be skipped, so
        # also probe at minute granularity for sub-day segments.
        step = max(_MS_PER_MINUTE, interval.duration_ms // 1440 or _MS_PER_MINUTE)
        ts = interval.start
        while ts < interval.end:
            if any(rt.contains(ts) for rt in self.repeated):
                return True
            ts += step
        return any(rt.contains(interval.end - 1) for rt in self.repeated)

    def matching_intervals(self, span: Interval) -> list["Interval"]:
        """The sub-intervals of ``span`` during which this condition holds.

        Used by the rule engine to split a wave segment at the instants
        where rule applicability flips.  Repeated windows are expanded
        day-by-day across the span; a window wrapping midnight contributes
        ``[start, midnight)`` and ``[midnight, end)`` pieces on each
        matching day (the weekday test applies to each piece's own day,
        consistent with :meth:`RepeatedTime.contains`).
        """
        if self.is_unconstrained():
            return [span]
        pieces: list[Interval] = []
        for iv in self.intervals:
            overlap = iv.intersect(span)
            if overlap is not None:
                pieces.append(overlap)
        if self.repeated:
            first_day = (span.start // _MS_PER_DAY) * _MS_PER_DAY
            day = first_day
            while day < span.end:
                weekday = day_of_week(day)
                for rt in self.repeated:
                    if weekday not in rt.days:
                        continue
                    if rt.start_minute < rt.end_minute:
                        windows = [(rt.start_minute, rt.end_minute)]
                    elif rt.start_minute == rt.end_minute:
                        windows = [(0, 1440)]
                    else:
                        windows = [(rt.start_minute, 1440), (0, rt.end_minute)]
                    for lo, hi in windows:
                        window = Interval(day + lo * _MS_PER_MINUTE, day + hi * _MS_PER_MINUTE)
                        overlap = window.intersect(span)
                        if overlap is not None:
                            pieces.append(overlap)
                day += _MS_PER_DAY
        return coalesce_intervals(pieces)

    def to_json(self) -> dict:
        obj: dict = {}
        if self.intervals:
            obj["TimeRange"] = [iv.to_json() for iv in self.intervals]
        if self.repeated:
            reps = [rt.to_json() for rt in self.repeated]
            obj["RepeatTime"] = reps[0] if len(reps) == 1 else reps
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "TimeCondition":
        intervals: list[Interval] = []
        repeated: list[RepeatedTime] = []
        ranges = obj.get("TimeRange", [])
        if isinstance(ranges, dict):
            ranges = [ranges]
        for entry in ranges:
            intervals.append(Interval.from_json(entry))
        reps = obj.get("RepeatTime", [])
        if isinstance(reps, dict):
            reps = [reps]
        for entry in reps:
            repeated.append(RepeatedTime.from_json(entry))
        return cls(tuple(intervals), tuple(repeated))
