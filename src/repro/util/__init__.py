"""Shared utilities: time intervals and schedules, geography, ids, JSON.

These are the leaf dependencies of every other subpackage.  Nothing in
:mod:`repro.util` imports from the rest of the package.
"""

from repro.util.timeutil import (
    Interval,
    RepeatedTime,
    TimeCondition,
    WEEKDAY_NAMES,
    day_of_week,
    format_timestamp,
    parse_hhmm,
    truncate_timestamp,
)
from repro.util.geo import (
    BoundingBox,
    CircleRegion,
    LatLon,
    PolygonRegion,
    Region,
    haversine_m,
    region_from_json,
)
from repro.util.idgen import DeterministicRng, api_key, stable_id
from repro.util.jsonutil import canonical_dumps, dumps, loads

__all__ = [
    "Interval",
    "RepeatedTime",
    "TimeCondition",
    "WEEKDAY_NAMES",
    "day_of_week",
    "format_timestamp",
    "parse_hhmm",
    "truncate_timestamp",
    "BoundingBox",
    "CircleRegion",
    "LatLon",
    "PolygonRegion",
    "Region",
    "haversine_m",
    "region_from_json",
    "DeterministicRng",
    "api_key",
    "stable_id",
    "canonical_dumps",
    "dumps",
    "loads",
]
