"""Geographic primitives: coordinates, regions, and location abstraction.

Data contributors define the Location condition of a privacy rule either by
a pre-defined label ("UCLA", "home") or by drawing a region on a map
(Table 1(a)).  This module provides the region geometries that back the map
UI — axis-aligned bounding boxes, circles, and simple polygons — plus the
location-abstraction ladder of Table 1(b) (coordinates → street address →
zipcode → city → state → country → not shared).

Abstraction uses a deterministic synthetic gazetteer: real reverse geocoding
needs a proprietary map service, so we derive address/zip/city/state labels
from a grid decomposition of the coordinate space.  The grid is stable,
invertible only down to its cell size, and monotone — coarser levels are
functions of finer ones — which is exactly the property the privacy ladder
needs (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

from repro.exceptions import GeoError

EARTH_RADIUS_M = 6_371_000.0

#: Location abstraction levels, finest first (Table 1(b), Location row).
LOCATION_GRANULARITIES = (
    "coordinates",
    "street_address",
    "zipcode",
    "city",
    "state",
    "country",
)


@dataclass(frozen=True, order=True)
class LatLon:
    """A WGS-84 coordinate pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"longitude out of range: {self.lon}")

    def to_json(self) -> list:
        return [self.lat, self.lon]

    @classmethod
    def from_json(cls, obj: Sequence[float]) -> "LatLon":
        try:
            lat, lon = float(obj[0]), float(obj[1])
        except (TypeError, ValueError, IndexError) as exc:
            raise GeoError(f"bad coordinate JSON: {obj!r}") from exc
        return cls(lat, lon)


def haversine_m(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two coordinates, in meters."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


class Region:
    """Abstract region on the map; subclasses implement containment."""

    kind = "abstract"

    def contains(self, point: LatLon) -> bool:
        raise NotImplementedError

    def bounding_box(self) -> "BoundingBox":
        raise NotImplementedError

    def to_json(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class BoundingBox(Region):
    """Axis-aligned lat/lon rectangle — the Google-Maps drag-select shape."""

    south: float
    west: float
    north: float
    east: float

    kind = "bbox"

    def __post_init__(self) -> None:
        if self.north < self.south:
            raise GeoError(f"bbox north {self.north} below south {self.south}")
        if self.east < self.west:
            raise GeoError(f"bbox east {self.east} west of west {self.west}")
        LatLon(self.south, self.west)
        LatLon(self.north, self.east)

    def contains(self, point: LatLon) -> bool:
        return self.south <= point.lat <= self.north and self.west <= point.lon <= self.east

    def bounding_box(self) -> "BoundingBox":
        return self

    def center(self) -> LatLon:
        return LatLon((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def intersects(self, other: "BoundingBox") -> bool:
        return (
            self.south <= other.north
            and other.south <= self.north
            and self.west <= other.east
            and other.west <= self.east
        )

    def to_json(self) -> dict:
        return {
            "Type": "BoundingBox",
            "South": self.south,
            "West": self.west,
            "North": self.north,
            "East": self.east,
        }


@dataclass(frozen=True)
class CircleRegion(Region):
    """A circle of ``radius_m`` meters around a center coordinate."""

    center: LatLon
    radius_m: float

    kind = "circle"

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise GeoError(f"circle radius must be positive: {self.radius_m}")

    def contains(self, point: LatLon) -> bool:
        return haversine_m(self.center, point) <= self.radius_m

    def bounding_box(self) -> BoundingBox:
        dlat = math.degrees(self.radius_m / EARTH_RADIUS_M)
        coslat = max(1e-9, math.cos(math.radians(self.center.lat)))
        dlon = math.degrees(self.radius_m / (EARTH_RADIUS_M * coslat))
        return BoundingBox(
            max(-90.0, self.center.lat - dlat),
            max(-180.0, self.center.lon - dlon),
            min(90.0, self.center.lat + dlat),
            min(180.0, self.center.lon + dlon),
        )

    def to_json(self) -> dict:
        return {
            "Type": "Circle",
            "Center": self.center.to_json(),
            "RadiusM": self.radius_m,
        }


@dataclass(frozen=True)
class PolygonRegion(Region):
    """A simple (non-self-intersecting) polygon, vertices in order."""

    vertices: tuple[LatLon, ...]

    kind = "polygon"

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeoError("polygon needs at least three vertices")

    def contains(self, point: LatLon) -> bool:
        # Ray casting in lat/lon space; adequate at the city scales the
        # paper's map UI deals with.
        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if (a.lat > point.lat) != (b.lat > point.lat):
                t = (point.lat - a.lat) / (b.lat - a.lat)
                lon_cross = a.lon + t * (b.lon - a.lon)
                if point.lon < lon_cross:
                    inside = not inside
                elif point.lon == lon_cross:
                    return True  # on an edge counts as inside
        return inside

    def bounding_box(self) -> BoundingBox:
        lats = [v.lat for v in self.vertices]
        lons = [v.lon for v in self.vertices]
        return BoundingBox(min(lats), min(lons), max(lats), max(lons))

    def to_json(self) -> dict:
        return {"Type": "Polygon", "Vertices": [v.to_json() for v in self.vertices]}


def region_from_json(obj: dict) -> Region:
    """Inverse of each Region subclass's ``to_json``."""
    try:
        kind = obj["Type"]
    except (KeyError, TypeError) as exc:
        raise GeoError(f"region JSON missing Type: {obj!r}") from exc
    if kind == "BoundingBox":
        try:
            return BoundingBox(obj["South"], obj["West"], obj["North"], obj["East"])
        except KeyError as exc:
            raise GeoError(f"bad bbox JSON: {obj!r}") from exc
    if kind == "Circle":
        try:
            return CircleRegion(LatLon.from_json(obj["Center"]), float(obj["RadiusM"]))
        except (KeyError, ValueError, TypeError) as exc:
            raise GeoError(f"bad circle JSON: {obj!r}") from exc
    if kind == "Polygon":
        try:
            vertices = tuple(LatLon.from_json(v) for v in obj["Vertices"])
        except (KeyError, TypeError) as exc:
            raise GeoError(f"bad polygon JSON: {obj!r}") from exc
        return PolygonRegion(vertices)
    raise GeoError(f"unknown region type: {kind!r}")


# --------------------------------------------------------------------------
# Synthetic gazetteer: grid-based location abstraction (Table 1(b)).
# --------------------------------------------------------------------------

# Cell edge for the finest level, and integer refinement factors for the
# coarser ones.  Coarser cells are derived from the finest cell by integer
# division, which makes the hierarchy *exactly* monotone — two points in
# one street cell can never land in different city cells, even at
# floating-point cell boundaries.
_FINEST_DEGREES = 0.002  # ~200 m blocks
_LEVEL_FACTOR = {
    "street_address": 1,  # 0.002 deg
    "zipcode": 10,  # 0.02 deg, ~2 km
    "city": 100,  # 0.2 deg, ~20 km
    "state": 1000,  # 2 deg
    "country": 5000,  # 10 deg
}

_LEVEL_PREFIX = {
    "street_address": "addr",
    "zipcode": "zip",
    "city": "city",
    "state": "state",
    "country": "country",
}

#: Kept for introspection/tests: effective cell edge per level, degrees.
_GRID_DEGREES = {
    level: _FINEST_DEGREES * factor for level, factor in _LEVEL_FACTOR.items()
}


def _grid_cell(point: LatLon, level: str) -> tuple[int, int]:
    factor = _LEVEL_FACTOR[level]
    fine_row = math.floor((point.lat + 90.0) / _FINEST_DEGREES)
    fine_col = math.floor((point.lon + 180.0) / _FINEST_DEGREES)
    return (fine_row // factor, fine_col // factor)


def abstract_location(point: LatLon, granularity: str) -> Union[list, str]:
    """Abstract a coordinate to the requested granularity.

    ``"coordinates"`` returns the raw ``[lat, lon]`` pair; every other level
    returns an opaque label string (e.g. ``"zip-5203-8834"``) derived from a
    deterministic grid.  Coarser labels are functions of finer ones, so an
    adversary holding only a coarse label cannot recover a finer one — the
    invariant the Table 1(b) ladder promises.
    """
    if granularity == "coordinates":
        return point.to_json()
    if granularity not in _GRID_DEGREES:
        raise GeoError(f"unknown location granularity: {granularity!r}")
    row, col = _grid_cell(point, granularity)
    return f"{_LEVEL_PREFIX[granularity]}-{row}-{col}"


def granularity_index(granularity: str) -> int:
    """Position of a granularity on the ladder; larger is coarser."""
    try:
        return LOCATION_GRANULARITIES.index(granularity)
    except ValueError as exc:
        raise GeoError(f"unknown location granularity: {granularity!r}") from exc


def coarsest(a: str, b: str) -> str:
    """Of two location granularities, return the coarser (safer) one."""
    return a if granularity_index(a) >= granularity_index(b) else b


@dataclass(frozen=True)
class LabeledPlace:
    """A contributor-defined named place ("home", "work", "UCLA")."""

    label: str
    region: Region

    def contains(self, point: LatLon) -> bool:
        return self.region.contains(point)

    def to_json(self) -> dict:
        return {"Label": self.label, "Region": self.region.to_json()}

    @classmethod
    def from_json(cls, obj: dict) -> "LabeledPlace":
        try:
            return cls(str(obj["Label"]), region_from_json(obj["Region"]))
        except (KeyError, TypeError) as exc:
            raise GeoError(f"bad labeled place JSON: {obj!r}") from exc
