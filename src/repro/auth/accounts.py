"""Web-UI accounts: username/password login and sessions.

"Accesses to web user interfaces are authenticated by a login system using
a username and a password" (Section 5.4).  Passwords are stored as salted
SHA-256 digests; successful login returns an opaque session token the web
UI presents on subsequent page requests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import AuthenticationError, ConflictError
from repro.util.idgen import DeterministicRng

ROLE_CONTRIBUTOR = "contributor"
ROLE_CONSUMER = "consumer"
_ROLES = (ROLE_CONTRIBUTOR, ROLE_CONSUMER)


def _hash_password(salt: str, password: str) -> str:
    return hashlib.sha256(f"{salt}\x1f{password}".encode("utf-8")).hexdigest()


@dataclass
class Principal:
    """One registered account."""

    username: str
    role: str
    salt: str
    password_hash: str
    groups: frozenset = field(default_factory=frozenset)

    def principals(self) -> frozenset:
        """The names this account can match in a Consumer condition."""
        return frozenset({self.username}) | self.groups


class AccountRegistry:
    """Accounts and login sessions for one server."""

    def __init__(self, rng: Optional[DeterministicRng] = None):
        self._rng = rng or DeterministicRng(0)
        self._accounts: dict[str, Principal] = {}
        self._sessions: dict[str, str] = {}  # token -> username

    def register(self, username: str, password: str, role: str) -> Principal:
        if role not in _ROLES:
            raise ConflictError(f"unknown role {role!r}; expected one of {_ROLES}")
        if username in self._accounts:
            raise ConflictError(f"username already registered: {username!r}")
        salt = f"salt-{self._rng.next_nonce()}"
        account = Principal(
            username=username,
            role=role,
            salt=salt,
            password_hash=_hash_password(salt, password),
        )
        self._accounts[username] = account
        return account

    def get(self, username: str) -> Optional[Principal]:
        return self._accounts.get(username)

    def set_groups(self, username: str, groups) -> None:
        account = self._require(username)
        self._accounts[username] = Principal(
            username=account.username,
            role=account.role,
            salt=account.salt,
            password_hash=account.password_hash,
            groups=frozenset(groups),
        )

    def _require(self, username: str) -> Principal:
        account = self._accounts.get(username)
        if account is None:
            raise AuthenticationError(f"unknown account: {username!r}")
        return account

    def login(self, username: str, password: str) -> str:
        """Validate credentials and open a session; returns the token."""
        account = self._require(username)
        if _hash_password(account.salt, password) != account.password_hash:
            raise AuthenticationError("bad username or password")
        token = hashlib.sha256(
            f"session\x1f{username}\x1f{self._rng.next_nonce()}".encode("utf-8")
        ).hexdigest()
        self._sessions[token] = username
        return token

    def session_user(self, token: Optional[str]) -> Principal:
        """Resolve a session token or raise 401."""
        if token is None:
            raise AuthenticationError("missing session token")
        username = self._sessions.get(token)
        if username is None:
            raise AuthenticationError("invalid or expired session token")
        return self._require(username)

    def logout(self, token: str) -> bool:
        return self._sessions.pop(token, None) is not None
