"""API key issuance, validation, and escrow.

Every server (each remote data store and the broker) runs its own
:class:`ApiKeyRegistry` seeded with a server secret; keys are SHA-256
digests over the secret, the principal, and a nonce, so they are
unforgeable without the secret and never repeat.

A data consumer ends up with "many API keys for multiple remote data
stores ... the registration process is automatically handled by the broker
and the list of API keys are stored on the broker" — :class:`KeyEscrow`
is that per-consumer key ring.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import AuthenticationError
from repro.util.idgen import DeterministicRng, api_key


class ApiKeyRegistry:
    """Issues and validates API keys for one server."""

    def __init__(self, server_secret: str, rng: Optional[DeterministicRng] = None):
        self._secret = server_secret
        self._rng = rng or DeterministicRng(0)
        self._keys: dict[str, str] = {}  # key -> principal
        self._by_principal: dict[str, str] = {}  # principal -> current key

    def issue(self, principal: str) -> str:
        """Issue (or re-issue) the key for a principal.

        Re-issuing rotates: the previous key is revoked, matching how a
        real service would respond to a leaked key.
        """
        old = self._by_principal.get(principal)
        if old is not None:
            del self._keys[old]
        key = api_key(self._secret, principal, self._rng.next_nonce())
        self._keys[key] = principal
        self._by_principal[principal] = key
        return key

    def key_of(self, principal: str) -> Optional[str]:
        return self._by_principal.get(principal)

    def is_registered(self, principal: str) -> bool:
        return principal in self._by_principal

    def authenticate(self, key: Optional[str]) -> str:
        """Return the principal owning ``key`` or raise 401."""
        if key is None:
            raise AuthenticationError("missing API key")
        principal = self._keys.get(key)
        if principal is None:
            raise AuthenticationError("invalid API key")
        return principal

    def revoke(self, principal: str) -> bool:
        """Revoke a principal's key; True if one existed."""
        key = self._by_principal.pop(principal, None)
        if key is None:
            return False
        del self._keys[key]
        return True


class KeyEscrow:
    """Per-consumer ring of (store host -> API key), held by the broker."""

    def __init__(self) -> None:
        self._rings: dict[str, dict] = {}  # consumer -> {host: key}

    def store_key(self, consumer: str, host: str, key: str) -> None:
        self._rings.setdefault(consumer, {})[host] = key

    def key_for(self, consumer: str, host: str) -> Optional[str]:
        return self._rings.get(consumer, {}).get(host)

    def ring_of(self, consumer: str) -> dict:
        return dict(self._rings.get(consumer, {}))

    def drop(self, consumer: str, host: Optional[str] = None) -> None:
        if host is None:
            self._rings.pop(consumer, None)
        else:
            self._rings.get(consumer, {}).pop(host, None)

    def consumers_for(self, host: str) -> list:
        """Consumers holding an escrowed key at ``host``, sorted.

        Failover uses this to find who must be re-registered at a newly
        promoted store: everyone who could reach the old primary.
        """
        return sorted(c for c, ring in self._rings.items() if host in ring)
