"""Context-aware fine-grained access control — the paper's core mechanism.

A data contributor expresses privacy preferences as a list of
:class:`~repro.rules.model.Rule` objects (Table 1): each rule has
conditions (data consumer, location, time, sensor, context) and an action
(allow, deny, or abstraction).  The :class:`~repro.rules.engine.RuleEngine`
evaluates every outgoing wave segment against the owner's rules, splitting
segments where time conditions flip, resolving conflicts (deny overrides,
coarsest abstraction wins), and enforcing the sensor/context *dependency
closure*: a raw channel is withheld whenever any context inferable from it
is not shared at raw level — the paper's respiration/smoking example.
"""

from repro.rules.abstraction import (
    EffectiveSharing,
    coarsen_context_label,
)

# NOTE: imported after repro.rules.abstraction so that the *function*
# ``abstraction`` (the Action constructor) wins over the same-named
# submodule on the package namespace.
from repro.rules.model import (
    Action,
    ALLOW,
    DENY,
    Rule,
    abstraction,
)
from repro.rules.compiler import (
    CompiledRuleCache,
    CompiledRuleSet,
    compile_rules,
)
from repro.rules.dependency import DependencyGraph, DEFAULT_DEPENDENCIES
from repro.rules.engine import ReleasedSegment, RuleEngine
from repro.rules.parser import rule_from_json, rule_to_json, rules_from_json, rules_to_json
from repro.rules.rulestore import RuleStore

__all__ = [
    "Action",
    "ALLOW",
    "DENY",
    "Rule",
    "abstraction",
    "EffectiveSharing",
    "coarsen_context_label",
    "CompiledRuleCache",
    "CompiledRuleSet",
    "compile_rules",
    "DependencyGraph",
    "DEFAULT_DEPENDENCIES",
    "ReleasedSegment",
    "RuleEngine",
    "rule_from_json",
    "rule_to_json",
    "rules_from_json",
    "rules_to_json",
    "RuleStore",
]
