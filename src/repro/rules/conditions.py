"""Per-rule condition matching against a wave segment.

Time conditions are deliberately absent here: the engine splits a segment
into pieces at the instants where time conditions flip and then asks this
module about the remaining (piece-invariant) conditions — consumer,
location, sensor scope, and context.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional

from repro.datastore.wavesegment import WaveSegment
from repro.rules.model import Rule
from repro.sensors.contexts import label_matches
from repro.util.geo import LabeledPlace, LatLon


def consumer_matches(rule: Rule, principals: FrozenSet[str]) -> bool:
    """Does the rule's consumer condition cover any of these principals?

    ``principals`` is the consumer's own name plus every group and study
    they belong to.  An empty consumer condition applies to everyone.
    """
    if not rule.consumers:
        return True
    return bool(set(rule.consumers) & principals)


def location_matches(
    rule: Rule,
    location: Optional[LatLon],
    places: Mapping[str, LabeledPlace],
) -> bool:
    """Does the segment's capture location satisfy the rule's condition?

    Label conditions are resolved through the contributor's named places;
    a label with no defined place never matches (the web UI prevents
    creating such rules, but synced rules may race a place rename).  A
    segment with *unknown* location does not match a location-conditioned
    rule — the rule's author scoped it to somewhere specific.
    """
    if not rule.location_labels and not rule.location_regions:
        return True
    if location is None:
        return False
    for label in rule.location_labels:
        place = places.get(label)
        if place is not None and place.contains(location):
            return True
    for region in rule.location_regions:
        if region.contains(location):
            return True
    return False


def context_matches(rule: Rule, segment_context: Mapping[str, str]) -> bool:
    """Does the segment's context annotation satisfy the rule's condition?

    Labels are grouped by category: categories AND together, labels within
    one category OR together.  A category whose value is not annotated on
    the segment cannot satisfy its requirement (unknown ≠ match).
    """
    for category, labels in rule.context_requirements().items():
        value = segment_context.get(category)
        if value is None:
            return False
        if not any(label_matches(label, value) for label in labels):
            return False
    return True


def sensor_overlaps(rule: Rule, segment: WaveSegment) -> bool:
    """Does the rule's sensor scope touch any channel of the segment?"""
    scope = rule.sensor_channels()
    if scope is None:
        return True
    return bool(scope & set(segment.channels))


def rule_applies(
    rule: Rule,
    principals: FrozenSet[str],
    segment: WaveSegment,
    places: Mapping[str, LabeledPlace],
) -> bool:
    """All piece-invariant conditions (everything except time)."""
    return (
        consumer_matches(rule, principals)
        and location_matches(rule, segment.location, places)
        and context_matches(rule, segment.context)
        and sensor_overlaps(rule, segment)
    )
