"""JSON serialization of privacy rules — the paper's Fig. 4 format.

The web UI stores rules "as JSON objects on the remote data stores"; the
example in Fig. 4 is::

    [{ 'Consumer': ['Bob'],
       'LocationLabel': ['UCLA'],
       'Action': 'Allow' },
     { 'Consumer': ['Bob'],
       'LocationLabel': ['UCLA'],
       'RepeatTime': {'Day': ['Mon','Tue','Wed','Thu','Fri'],
                      'HourMin': ['9:00am', '6:00pm']},
       'Context': ['Conversation'],
       'Action': {'Abstraction': {'Stress': 'NotShared'}} }]

This module parses exactly that shape (plus the attributes of Table 1 the
example does not exercise: ``LocationRegion``, ``TimeRange``, ``Sensor``)
and serializes back to it.  Unknown keys are rejected so that typos in
hand-written rules fail loudly instead of silently granting access.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import GeoError, RuleError, SchemaError
from repro.rules.model import ALLOW, DENY, Action, Rule
from repro.util.geo import region_from_json
from repro.util.timeutil import TimeCondition

_KNOWN_KEYS = frozenset(
    (
        "Consumer",
        "LocationLabel",
        "LocationRegion",
        "TimeRange",
        "RepeatTime",
        "Sensor",
        "Context",
        "Action",
        "RuleId",
        "Note",
    )
)


def _string_list(obj: Any, key: str) -> tuple:
    value = obj.get(key, [])
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise RuleError(f"rule attribute {key!r} must be a string or list of strings")
    return tuple(value)


def _parse_action(value: Any) -> Action:
    if isinstance(value, str):
        if value == "Allow":
            return ALLOW
        if value == "Deny":
            return DENY
        raise RuleError(f"unknown action string: {value!r}")
    if isinstance(value, dict):
        if set(value) != {"Abstraction"}:
            raise RuleError(f"action object must have exactly the key 'Abstraction': {value!r}")
        levels = value["Abstraction"]
        if not isinstance(levels, dict):
            raise RuleError(f"'Abstraction' must map aspects to levels: {levels!r}")
        return Action("abstraction", dict(levels))
    raise RuleError(f"unparseable action: {value!r}")


def rule_from_json(obj: dict) -> Rule:
    """Parse one privacy rule from its Fig. 4 JSON form."""
    if not isinstance(obj, dict):
        raise RuleError(f"rule must be a JSON object, got {type(obj).__name__}")
    unknown = set(obj) - _KNOWN_KEYS
    if unknown:
        raise RuleError(f"unknown rule attributes: {sorted(unknown)}")
    if "Action" not in obj:
        raise RuleError("rule is missing the required 'Action' attribute")
    regions = obj.get("LocationRegion", [])
    if isinstance(regions, dict):
        regions = [regions]
    try:
        parsed_regions = tuple(region_from_json(r) for r in regions)
    except (SchemaError, GeoError) as exc:
        raise RuleError(str(exc)) from exc
    return Rule(
        consumers=_string_list(obj, "Consumer"),
        location_labels=_string_list(obj, "LocationLabel"),
        location_regions=parsed_regions,
        time=TimeCondition.from_json(obj),
        sensors=_string_list(obj, "Sensor"),
        contexts=_string_list(obj, "Context"),
        action=_parse_action(obj["Action"]),
        rule_id=str(obj.get("RuleId", "")),
        note=str(obj.get("Note", "")),
    )


def rule_to_json(rule: Rule) -> dict:
    """Serialize one rule back to the Fig. 4 JSON form."""
    obj: dict = {}
    if rule.consumers:
        obj["Consumer"] = list(rule.consumers)
    if rule.location_labels:
        obj["LocationLabel"] = list(rule.location_labels)
    if rule.location_regions:
        obj["LocationRegion"] = [r.to_json() for r in rule.location_regions]
    obj.update(rule.time.to_json())
    if rule.sensors:
        obj["Sensor"] = list(rule.sensors)
    if rule.contexts:
        obj["Context"] = list(rule.contexts)
    if rule.action.is_allow:
        obj["Action"] = "Allow"
    elif rule.action.is_deny:
        obj["Action"] = "Deny"
    else:
        obj["Action"] = {"Abstraction": dict(rule.action.abstraction)}
    obj["RuleId"] = rule.rule_id
    if rule.note:
        obj["Note"] = rule.note
    return obj


def rules_from_json(objs: Iterable[dict]) -> list:
    """Parse a rule list (the unit the broker syncs)."""
    if not isinstance(objs, list):
        raise RuleError(f"rule set must be a JSON array, got {type(objs).__name__}")
    return [rule_from_json(o) for o in objs]


def rules_to_json(rules: Iterable[Rule]) -> list:
    """Serialize an iterable of rules to their JSON wire forms."""
    return [rule_to_json(r) for r in rules]
