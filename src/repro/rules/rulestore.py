"""Per-contributor rule storage with versioning.

Each remote data store keeps its contributors' privacy rules; "whenever
data contributors change their privacy rules, remote data stores
automatically communicate with the broker to synchronize" (Section 5.2).
The :class:`RuleStore` assigns a monotonically increasing version to every
mutation, and the sync protocol (:mod:`repro.broker.sync`) ships rule sets
whose version is newer than the broker's copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.exceptions import MissingRecordError, RuleError
from repro.rules.model import Rule
from repro.rules.parser import rules_from_json, rules_to_json


@dataclass
class RuleSetSnapshot:
    """A versioned copy of one contributor's rules (the sync unit)."""

    contributor: str
    version: int
    rules: tuple

    def to_json(self) -> dict:
        """JSON wire form of the snapshot (the sync payload)."""
        return {
            "Contributor": self.contributor,
            "Version": self.version,
            "Rules": rules_to_json(self.rules),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "RuleSetSnapshot":
        """Parse a snapshot from its JSON wire form."""
        return cls(
            contributor=str(obj["Contributor"]),
            version=int(obj["Version"]),
            rules=tuple(rules_from_json(obj.get("Rules", []))),
        )


class RuleStore:
    """Rules for many contributors, with change notification hooks."""

    def __init__(self) -> None:
        self._rules: dict[str, list] = {}
        self._versions: dict[str, int] = {}
        self._listeners: list[Callable[[RuleSetSnapshot], None]] = []
        #: Store-wide monotonic epoch: moves on *every* rule mutation for
        #: *any* contributor, and on every :meth:`restore` (reload or WAL
        #: replay installs state this process has never evaluated under).
        #: The release cache keys decisions by this epoch, so "bump the
        #: epoch" is the one invariant that keeps cached grants fresh —
        #: per-contributor versions exist for broker sync and cannot serve
        #: that role because ``restore`` rewinds them.
        self.rules_version = 0
        #: Optional ``now_ms`` callable (the deployment's simulated clock).
        #: When set, every mutation stamps :meth:`mutated_at`, which is
        #: what the privacy-SLO tracker anchors revocation latency to.
        self._clock: Optional[Callable[[], int]] = None
        self._mutated_at: dict[str, int] = {}

    def set_clock(self, now_ms: Callable[[], int]) -> None:
        """Wire the deployment clock so mutations carry timestamps."""
        self._clock = now_ms

    def mutated_at(self, contributor: str) -> int:
        """Sim ms of the contributor's last mutation (0 when unstamped)."""
        return self._mutated_at.get(contributor, 0)

    def _stamp(self, contributor: str) -> None:
        if self._clock is not None:
            self._mutated_at[contributor] = int(self._clock())

    def on_change(self, listener: Callable[[RuleSetSnapshot], None]) -> None:
        """Register a callback fired after every rule mutation.

        The data-store service uses this to push rule changes to the
        broker (eager sync) and to the contributor's phone (rule-aware
        collection).
        """
        self._listeners.append(listener)

    def _notify(self, contributor: str) -> None:
        snapshot = self.snapshot(contributor)
        for listener in self._listeners:
            listener(snapshot)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def register(self, contributor: str) -> None:
        """Create an empty, version-0 rule set for a new contributor."""
        self._rules.setdefault(contributor, [])
        self._versions.setdefault(contributor, 0)

    def add(self, contributor: str, rule: Rule) -> Rule:
        """Add one rule for a contributor; duplicate rule ids are rejected.

        Re-adding a rule *identical* to the one already stored under its
        id is an idempotent no-op: a semi-sync replication rejection (503)
        leaves the rule applied locally, and the client's retry of the
        same request must converge instead of faulting on its own success.
        """
        rules = self._rules.setdefault(contributor, [])
        for existing in rules:
            if existing.rule_id == rule.rule_id:
                if existing == rule:
                    return existing
                raise RuleError(
                    f"duplicate rule id {rule.rule_id!r} for {contributor!r}"
                )
        rules.append(rule)
        self._bump(contributor)
        return rule

    def remove(self, contributor: str, rule_id: str) -> Optional[Rule]:
        """Remove one rule by id; an absent id is an idempotent no-op.

        Returns the removed rule, or ``None`` when no such rule exists
        (no version bump, no listener fire).  The no-op arm mirrors
        :meth:`add`'s identical-rule tolerance: a semi-sync replication
        rejection (503) leaves the rule already removed locally, and the
        client's retry of the same request must converge instead of
        faulting on its own success.
        """
        rules = self._rules.get(contributor, [])
        for i, rule in enumerate(rules):
            if rule.rule_id == rule_id:
                removed = rules.pop(i)
                self._bump(contributor)
                return removed
        return None

    def replace_all(self, contributor: str, rules: Iterable[Rule]) -> None:
        """Replace a contributor's entire rule set in one mutation."""
        self._rules[contributor] = list(rules)
        self._bump(contributor)

    def restore(self, contributor: str, rules: Iterable[Rule], version: int) -> None:
        """Install persisted state without notifying sync listeners.

        Used when reloading a store from disk (snapshot load and WAL
        replay): the broker already has this state, so firing sync
        listeners would be redundant traffic.  The store-wide
        :attr:`rules_version` epoch still advances — restored state was
        never evaluated by *this* process, so any cached decision keyed to
        an earlier epoch must become unreachable.
        """
        self._rules[contributor] = list(rules)
        self._versions[contributor] = version
        self.rules_version += 1
        self._stamp(contributor)

    def _bump(self, contributor: str) -> None:
        """Advance both version counters, then fire change listeners."""
        self._versions[contributor] = self._versions.get(contributor, 0) + 1
        self.rules_version += 1
        self._stamp(contributor)
        self._notify(contributor)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def contributors(self) -> list:
        """Every contributor with a (possibly empty) rule set, sorted."""
        return sorted(self._rules)

    def rules_of(self, contributor: str) -> tuple:
        """One contributor's current rules, as a tuple."""
        return tuple(self._rules.get(contributor, ()))

    def version_of(self, contributor: str) -> int:
        """One contributor's per-contributor sync version (0 when unknown)."""
        return self._versions.get(contributor, 0)

    def snapshot(self, contributor: str) -> RuleSetSnapshot:
        """A versioned copy of one contributor's rules (the sync unit)."""
        return RuleSetSnapshot(
            contributor=contributor,
            version=self.version_of(contributor),
            rules=self.rules_of(contributor),
        )

    def get(self, contributor: str, rule_id: str) -> Rule:
        """Look up one rule by id; raises MissingRecordError when absent."""
        for rule in self._rules.get(contributor, ()):
            if rule.rule_id == rule_id:
                return rule
        raise MissingRecordError(f"no rule {rule_id!r} for contributor {contributor!r}")
