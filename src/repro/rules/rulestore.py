"""Per-contributor rule storage with versioning.

Each remote data store keeps its contributors' privacy rules; "whenever
data contributors change their privacy rules, remote data stores
automatically communicate with the broker to synchronize" (Section 5.2).
The :class:`RuleStore` assigns a monotonically increasing version to every
mutation, and the sync protocol (:mod:`repro.broker.sync`) ships rule sets
whose version is newer than the broker's copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.exceptions import MissingRecordError, RuleError
from repro.rules.model import Rule
from repro.rules.parser import rules_from_json, rules_to_json


@dataclass
class RuleSetSnapshot:
    """A versioned copy of one contributor's rules (the sync unit)."""

    contributor: str
    version: int
    rules: tuple

    def to_json(self) -> dict:
        return {
            "Contributor": self.contributor,
            "Version": self.version,
            "Rules": rules_to_json(self.rules),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "RuleSetSnapshot":
        return cls(
            contributor=str(obj["Contributor"]),
            version=int(obj["Version"]),
            rules=tuple(rules_from_json(obj.get("Rules", []))),
        )


class RuleStore:
    """Rules for many contributors, with change notification hooks."""

    def __init__(self) -> None:
        self._rules: dict[str, list] = {}
        self._versions: dict[str, int] = {}
        self._listeners: list[Callable[[RuleSetSnapshot], None]] = []

    def on_change(self, listener: Callable[[RuleSetSnapshot], None]) -> None:
        """Register a callback fired after every rule mutation.

        The data-store service uses this to push rule changes to the
        broker (eager sync) and to the contributor's phone (rule-aware
        collection).
        """
        self._listeners.append(listener)

    def _notify(self, contributor: str) -> None:
        snapshot = self.snapshot(contributor)
        for listener in self._listeners:
            listener(snapshot)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def register(self, contributor: str) -> None:
        """Create an empty, version-0 rule set for a new contributor."""
        self._rules.setdefault(contributor, [])
        self._versions.setdefault(contributor, 0)

    def add(self, contributor: str, rule: Rule) -> Rule:
        rules = self._rules.setdefault(contributor, [])
        if any(r.rule_id == rule.rule_id for r in rules):
            raise RuleError(f"duplicate rule id {rule.rule_id!r} for {contributor!r}")
        rules.append(rule)
        self._bump(contributor)
        return rule

    def remove(self, contributor: str, rule_id: str) -> Rule:
        rules = self._rules.get(contributor, [])
        for i, rule in enumerate(rules):
            if rule.rule_id == rule_id:
                removed = rules.pop(i)
                self._bump(contributor)
                return removed
        raise MissingRecordError(f"no rule {rule_id!r} for contributor {contributor!r}")

    def replace_all(self, contributor: str, rules: Iterable[Rule]) -> None:
        self._rules[contributor] = list(rules)
        self._bump(contributor)

    def restore(self, contributor: str, rules: Iterable[Rule], version: int) -> None:
        """Install persisted state without bumping or notifying.

        Used when reloading a store from disk: the broker already has this
        state, so firing sync listeners would be redundant traffic.
        """
        self._rules[contributor] = list(rules)
        self._versions[contributor] = version

    def _bump(self, contributor: str) -> None:
        self._versions[contributor] = self._versions.get(contributor, 0) + 1
        self._notify(contributor)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def contributors(self) -> list:
        return sorted(self._rules)

    def rules_of(self, contributor: str) -> tuple:
        return tuple(self._rules.get(contributor, ()))

    def version_of(self, contributor: str) -> int:
        return self._versions.get(contributor, 0)

    def snapshot(self, contributor: str) -> RuleSetSnapshot:
        return RuleSetSnapshot(
            contributor=contributor,
            version=self.version_of(contributor),
            rules=self.rules_of(contributor),
        )

    def get(self, contributor: str, rule_id: str) -> Rule:
        for rule in self._rules.get(contributor, ()):
            if rule.rule_id == rule_id:
                return rule
        raise MissingRecordError(f"no rule {rule_id!r} for contributor {contributor!r}")
