"""Sensor/context dependency graph and raw-channel closure.

Section 5.1 of the paper: "a sensor can be used to infer multiple context
information (e.g., a respiration sensor is used for stress, conversation,
and smoking).  Therefore, if a contributor chooses not to share such a
sensor or a related context, the raw sensor data will not be shared even
though other relevant contexts are chosen to be shared in raw data form."

We model the dependency as a bipartite digraph (channels → contexts they
can reveal) in :mod:`networkx`, and the enforcement as a *closure*: a raw
channel may flow to a consumer only when **every** context reachable from
it is being shared at its raw ladder level.  Benchmark C4 shows that
without this closure a consumer can re-infer a denied context from leaked
raw channels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import networkx as nx

from repro.exceptions import UnknownContextError
from repro.sensors.contexts import CONTEXTS, ContextSpec


class DependencyGraph:
    """Bipartite digraph: sensor channels → inferable context categories."""

    def __init__(self, contexts: Optional[Dict[str, ContextSpec]] = None):
        self.contexts = dict(contexts or CONTEXTS)
        self.graph = nx.DiGraph()
        for spec in self.contexts.values():
            self.graph.add_node(spec.name, kind="context")
            for channel_name in spec.source_channels:
                self.graph.add_node(channel_name, kind="channel")
                self.graph.add_edge(channel_name, spec.name)

    def contexts_revealed_by(self, channel_name: str) -> frozenset:
        """Context categories inferable from a raw channel."""
        if channel_name not in self.graph:
            return frozenset()
        return frozenset(
            node
            for node in nx.descendants(self.graph, channel_name)
            if self.graph.nodes[node].get("kind") == "context"
        )

    def channels_revealing(self, context_name: str) -> frozenset:
        """Raw channels from which a context category can be inferred."""
        if context_name not in self.graph:
            raise UnknownContextError(f"unknown context category: {context_name!r}")
        return frozenset(
            node
            for node in nx.ancestors(self.graph, context_name)
            if self.graph.nodes[node].get("kind") == "channel"
        )

    def raw_permitted_channels(
        self, candidate_channels: Iterable[str], raw_shared_contexts: Iterable[str]
    ) -> frozenset:
        """Channels from ``candidate_channels`` safe to share raw.

        ``raw_shared_contexts`` is the set of context categories whose
        effective sharing level is the raw (finest) ladder rung.  A channel
        survives iff every context it can reveal is in that set.  Channels
        that reveal no context (skin temperature) always survive.
        """
        raw_ok = frozenset(raw_shared_contexts)
        out = set()
        for channel_name in candidate_channels:
            revealed = self.contexts_revealed_by(channel_name)
            if revealed <= raw_ok:
                out.add(channel_name)
        return frozenset(out)

    def blocked_channels(
        self, candidate_channels: Iterable[str], non_raw_contexts: Iterable[str]
    ) -> frozenset:
        """Channels that must be withheld given restricted contexts.

        The complement view of :meth:`raw_permitted_channels`, convenient
        for explanations in the web UI ("respiration withheld because
        Smoking is not shared").
        """
        restricted = frozenset(non_raw_contexts)
        out = set()
        for channel_name in candidate_channels:
            if self.contexts_revealed_by(channel_name) & restricted:
                out.add(channel_name)
        return frozenset(out)

    def explain(self, channel_name: str) -> str:
        """Human-readable dependency note for one channel."""
        revealed = sorted(self.contexts_revealed_by(channel_name))
        if not revealed:
            return f"{channel_name} reveals no registered context."
        return f"{channel_name} can reveal: {', '.join(revealed)}."


#: The default graph over the stock context registry.
DEFAULT_DEPENDENCIES = DependencyGraph()
