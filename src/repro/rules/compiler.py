"""Compiled rule evaluation: the interpreter's hot path, precomputed.

The interpreted :class:`~repro.rules.engine.RuleEngine` re-derives
everything per evaluation: it rebuilds consumer buckets, re-expands
sensor groups, re-groups context labels, re-walks the networkx
dependency graph, and re-splits time conditions with ``datetime``
arithmetic — for every segment of every query.  This module compiles a
contributor's rule set **once per rules-version epoch** into a
:class:`CompiledRuleSet`:

* **consumer buckets** — rule indices keyed by consumer name, with a
  memo from resolved principal sets to the deduplicated candidate list
  (the interpreter's ``candidate_rules`` order, frozen);
* **interval structure** — each rule's static time ranges pre-coalesced
  into disjoint sorted windows and its weekly windows pre-split per
  weekday into millisecond offsets (midnight wrap resolved at compile
  time), so piece membership is pointer-walking over sorted tuples;
* **spatial grid** — location-conditioned rules indexed by the grid
  cells their regions' bounding boxes cover, so a segment's capture
  point prunes region tests to the rules that could possibly contain it;
* **dependency-closure bitmasks** — one bit per channel and per context
  category, with ``channels → revealable contexts`` and
  ``context → revealing channels`` masks precomputed from
  :class:`~repro.rules.dependency.DependencyGraph`, replacing per-piece
  graph traversals with integer ANDs;
* **deny-first short-circuit** — a piece's matching rules are scanned
  for an unscoped Deny *before* any grant computation; deny dominance
  (machine-checked by the C8 conformance oracle) makes the early return
  output-equivalent to the interpreter's late one.

Equivalence is the contract: for identical inputs the compiled and
interpreted engines must produce byte-identical
:meth:`~repro.rules.engine.ReleasedSegment.to_json` payloads.  The
three-way conformance sweep (oracle vs interpreted vs compiled, see
:mod:`repro.conformance.runner`) and benchmark C13 gate this on every
change; the proof obligations that make precomputation safe (coalesce
distributes over span intersection, piece membership reduces to a
start-point test, deny dominance) are spelled out in
docs/ARCHITECTURE.md.

Artifacts are cached by :class:`CompiledRuleCache` keyed on the
store-wide ``rules_version`` epoch — the same invariant the PR 5 release
cache rides — so a stale artifact is unreachable by construction; places
edits, recovery, and failover rules installs invalidate wholesale,
exactly where the release cache does.
"""

from __future__ import annotations

import math
import time as _time
from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional

from repro.datastore.wavesegment import WaveSegment
from repro.exceptions import RuleError
from repro.rules.abstraction import coarsen_context_label
from repro.rules.dependency import DEFAULT_DEPENDENCIES, DependencyGraph
from repro.rules.engine import ReleasedSegment, RuleEngine, _GPS_CHANNELS
from repro.rules.model import (
    LOCATION_ASPECT,
    LOCATION_LEVELS,
    Rule,
    TIME_ASPECT,
    TIME_LEVELS,
)
from repro.sensors.channels import CHANNELS
from repro.sensors.contexts import CONTEXTS, _LABEL_PREDICATES
from repro.util.geo import LabeledPlace, LatLon, Region, abstract_location
from repro.util.timeutil import (
    Interval,
    WEEKDAY_NAMES,
    coalesce_intervals,
    truncate_timestamp,
)

_MS_PER_MINUTE = 60_000
_MS_PER_DAY = 86_400_000

#: Spatial-grid cell edge in degrees (~5.5 km of latitude).  Regions are
#: indexed by the cells their bounding boxes cover — a conservative
#: superset, so grid pruning can never skip a region that contains the
#: point; exact containment is still tested per candidate.
GRID_DEGREES = 0.05

#: A region whose bounding box covers more cells than this is kept in an
#: unpruned side list instead of exploding the grid.
GRID_MAX_CELLS = 512

#: Upper bound on memoized principal sets (one query audience each).
CANDIDATE_MEMO_MAX = 4096

_NOTSHARE_LOC = len(LOCATION_LEVELS) - 1
_NOTSHARE_TIME = len(TIME_LEVELS) - 1

_KIND_ALLOW = 0
_KIND_DENY = 1
_KIND_ABSTRACTION = 2


@dataclass(frozen=True)
class CompiledRule:
    """One rule lowered to precomputed match/effect structures.

    Attributes:
        index: position in the contributor's rule list (grid/bucket key).
        rule: the source :class:`~repro.rules.model.Rule` (ids, messages).
        kind: 0 = allow, 1 = deny, 2 = abstraction (int compare is the
            hottest branch in piece resolution).
        scope_mask: channel bitmask of the sensor scope, or None for
            "all channels of the segment".
        ctx_req: ``((category, accepted_values), ...)`` — the context
            condition compiled to per-category accepted-value frozensets
            (AND across categories, OR within one).
        has_location: True when the rule carries a location condition.
        regions: resolved region geometries (labels looked up through the
            contributor's places at compile time; an undefined label
            contributes nothing, so ``regions == ()`` never matches).
        grid_indexed: True when every region was small enough to index in
            the spatial grid (pruning applies); False puts the rule on the
            always-tested path.
        time_unconstrained: True when the rule has no time condition.
        static_windows: pre-coalesced, empties-dropped static time ranges
            as sorted disjoint ``(start_ms, end_ms)`` tuples.
        day_windows: per-weekday (Mon-first) merged clock windows as
            ``(start_offset_ms, end_offset_ms)`` tuples, or None when the
            rule has no repeated windows.
        abs_location: Location ladder index of the abstraction action
            (0 when the aspect is untouched).
        abs_time: Time ladder index of the abstraction action.
        abs_contexts: ``((category_position, ladder_index), ...)`` for the
            context aspects the abstraction action names.
    """

    index: int
    rule: Rule
    kind: int
    scope_mask: Optional[int]
    ctx_req: tuple
    has_location: bool
    regions: tuple
    grid_indexed: bool
    time_unconstrained: bool
    static_windows: tuple
    day_windows: Optional[tuple]
    abs_location: int
    abs_time: int
    abs_contexts: tuple


def _compile_time(rule: Rule) -> tuple:
    """Lower a rule's time condition to static + per-weekday windows.

    Static intervals are filtered of zero-length entries (the runtime
    ``Interval.intersect`` drops them unconditionally) and coalesced once:
    union distributes over span intersection, so coalescing before the
    span is known yields the same canonical disjoint list the interpreter
    computes per segment.  Weekly windows are split at midnight exactly
    as :meth:`~repro.util.timeutil.TimeCondition.matching_intervals` does
    (wrap → ``[start, 1440)`` + ``[0, end)``; start == end → full day)
    and merged per weekday.
    """
    tc = rule.time
    if tc.is_unconstrained():
        return True, (), None
    statics = coalesce_intervals(iv for iv in tc.intervals if iv.start < iv.end)
    static_windows = tuple((iv.start, iv.end) for iv in statics)
    per_day: list = [[] for _ in WEEKDAY_NAMES]
    for rt in tc.repeated:
        if rt.start_minute < rt.end_minute:
            windows = [(rt.start_minute, rt.end_minute)]
        elif rt.start_minute == rt.end_minute:
            windows = [(0, 1440)]
        else:
            windows = [(rt.start_minute, 1440), (0, rt.end_minute)]
        windows = [(lo, hi) for lo, hi in windows if lo < hi]
        for day in rt.days:
            per_day[WEEKDAY_NAMES.index(day)].extend(
                (lo * _MS_PER_MINUTE, hi * _MS_PER_MINUTE) for lo, hi in windows
            )
    day_windows: Optional[tuple] = None
    if any(per_day):
        day_windows = tuple(tuple(_merge_windows(w)) for w in per_day)
    return False, static_windows, day_windows


def _merge_windows(windows: list) -> list:
    """Sort and merge overlapping/adjacent ``(start, end)`` tuples."""
    merged: list = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]


class CompiledRuleSet:
    """One contributor's rules in compiled, batch-evaluable form.

    The artifact is immutable once built (internal channel-table growth
    for never-registered channel names aside) and is keyed externally by
    the store-wide rules-version epoch; see :class:`CompiledRuleCache`.
    Evaluation takes the already-resolved principal set — membership is a
    query-time input, never baked into the artifact.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        places: Optional[Mapping[str, LabeledPlace]] = None,
        *,
        dependencies: Optional[DependencyGraph] = None,
        enforce_closure: bool = True,
        contributor: str = "",
        obs=None,
    ):
        self.contributor = contributor
        self.rules = tuple(rules)
        self.places = dict(places or {})
        self.dependencies = dependencies or DEFAULT_DEPENDENCIES
        self.enforce_closure = enforce_closure

        # --- category tables --------------------------------------------
        # Sharing categories (those with an abstraction ladder) first, in
        # registry order; graph-only categories after.  A graph-only
        # category can never be shared raw, so any channel revealing one
        # is always closure-blocked — mirroring the interpreter, whose
        # raw_contexts() only ever contains registry categories.
        self._sharing_cats = tuple(CONTEXTS)
        extra = tuple(c for c in self.dependencies.contexts if c not in CONTEXTS)
        self._cat_bit = {
            name: i for i, name in enumerate(self._sharing_cats + extra)
        }
        self._sharing_cats_mask = (1 << len(self._sharing_cats)) - 1
        self._sharing_pos = {name: i for i, name in enumerate(self._sharing_cats)}
        self._ladders = tuple(
            CONTEXTS[name].abstraction_levels for name in self._sharing_cats
        )
        self._ctx_zero = tuple(0 for _ in self._sharing_cats)
        self._ctx_notshare = tuple(
            ladder.index("NotShare") if "NotShare" in ladder else -1
            for ladder in self._ladders
        )

        # --- channel tables ---------------------------------------------
        # Registered channels get stable bits up front; segment channels
        # the registry has never heard of get bits on first sight with a
        # context mask straight from the dependency graph (usually zero).
        self._channel_bits: dict = {}
        self._bit_channels: list = []
        self._channel_ctx_masks: list = []
        for name in sorted(CHANNELS):
            self._channel_bit(name)
        for spec in self.dependencies.contexts.values():
            for name in spec.source_channels:
                self._channel_bit(name)
        self._gps_mask = 0
        for name in _GPS_CHANNELS:
            self._gps_mask |= 1 << self._channel_bit(name)
        # context category -> mask of channels that can reveal it (label
        # eligibility: `channels_revealing(category) & granted`).
        self._revealing = tuple(
            (self._cat_bit[name], self._mask_of(self.dependencies.channels_revealing(name)))
            for name in self.dependencies.contexts
        )
        self._seg_mask_memo: dict = {}

        # --- per-rule lowering ------------------------------------------
        compiled: list = []
        for index, rule in enumerate(self.rules):
            compiled.append(self._compile_rule(index, rule))
        self.compiled: tuple = tuple(compiled)

        # --- consumer buckets + memo ------------------------------------
        self._buckets: dict = {None: []}
        for cr in self.compiled:
            if not cr.rule.consumers:
                self._buckets[None].append(cr.index)
            else:
                for consumer in cr.rule.consumers:
                    self._buckets.setdefault(consumer, []).append(cr.index)
        self._candidate_memo: OrderedDict = OrderedDict()

        # --- spatial grid ------------------------------------------------
        self._grid: dict = {}
        for cr in self.compiled:
            if not cr.has_location or not cr.regions or not cr.grid_indexed:
                continue
            for cell in self._region_cells(cr.regions):
                self._grid.setdefault(cell, set()).add(cr.index)
        self._grid = {cell: frozenset(ids) for cell, ids in self._grid.items()}
        self._empty_cell: frozenset = frozenset()

        # --- observability ----------------------------------------------
        self.obs = obs if obs is not None and getattr(obs, "enabled", False) else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_batches = m.counter("compiled_eval_batches_total")
            self._c_segments = m.counter("compiled_eval_segments_total")
            self._c_bucket_skips = m.counter("compiled_bucket_skips_total")
            self._c_grid_prunes = m.counter("compiled_grid_prunes_total")
            self._c_full_deny = m.counter("compiled_full_deny_short_circuits_total")
            self._c_default_deny = m.counter("compiled_default_deny_total")
        else:
            self._c_batches = None

    # ------------------------------------------------------------------
    # Compile-time lowering
    # ------------------------------------------------------------------

    def _channel_bit(self, name: str) -> int:
        """Bit position of a channel name, assigning one on first sight."""
        bit = self._channel_bits.get(name)
        if bit is None:
            bit = len(self._bit_channels)
            self._channel_bits[name] = bit
            self._bit_channels.append(name)
            mask = 0
            for category in self.dependencies.contexts_revealed_by(name):
                mask |= 1 << self._cat_bit[category]
            self._channel_ctx_masks.append(mask)
        return bit

    def _mask_of(self, names: Iterable[str]) -> int:
        mask = 0
        for name in names:
            mask |= 1 << self._channel_bit(name)
        return mask

    def _compile_rule(self, index: int, rule: Rule) -> CompiledRule:
        """Lower one rule (see :class:`CompiledRule` for field semantics)."""
        scope = rule.sensor_channels()
        scope_mask = None if scope is None else self._mask_of(scope)

        grouped: dict = {}
        for category, labels in rule.context_requirements().items():
            accepted: set = set()
            for label in labels:
                accepted.update(_LABEL_PREDICATES[label][1])
            grouped[category] = frozenset(accepted)
        ctx_req = tuple(grouped.items())

        has_location = bool(rule.location_labels or rule.location_regions)
        regions: list = []
        if has_location:
            for label in rule.location_labels:
                place = self.places.get(label)
                if place is not None:
                    regions.append(place.region)
            regions.extend(rule.location_regions)
        grid_indexed = bool(regions) and self._region_cells(tuple(regions)) is not None

        time_unconstrained, static_windows, day_windows = _compile_time(rule)

        abs_location = 0
        abs_time = 0
        abs_contexts: list = []
        if rule.action.is_abstraction:
            for aspect, level in rule.action.abstraction.items():
                if aspect == LOCATION_ASPECT:
                    abs_location = LOCATION_LEVELS.index(level)
                elif aspect == TIME_ASPECT:
                    abs_time = TIME_LEVELS.index(level)
                else:
                    pos = self._sharing_pos[aspect]
                    abs_contexts.append((pos, self._ladders[pos].index(level)))
        kind = (
            _KIND_ALLOW
            if rule.action.is_allow
            else (_KIND_DENY if rule.action.is_deny else _KIND_ABSTRACTION)
        )
        return CompiledRule(
            index=index,
            rule=rule,
            kind=kind,
            scope_mask=scope_mask,
            ctx_req=ctx_req,
            has_location=has_location,
            regions=tuple(regions),
            grid_indexed=grid_indexed,
            time_unconstrained=time_unconstrained,
            static_windows=static_windows,
            day_windows=day_windows,
            abs_location=abs_location,
            abs_time=abs_time,
            abs_contexts=tuple(abs_contexts),
        )

    def _region_cells(self, regions: tuple) -> Optional[frozenset]:
        """Grid cells the regions' bounding boxes cover, or None if too many."""
        cells: set = set()
        for region in regions:
            bbox = region.bounding_box()
            row0 = math.floor((bbox.south + 90.0) / GRID_DEGREES)
            row1 = math.floor((bbox.north + 90.0) / GRID_DEGREES)
            col0 = math.floor((bbox.west + 180.0) / GRID_DEGREES)
            col1 = math.floor((bbox.east + 180.0) / GRID_DEGREES)
            if (row1 - row0 + 1) * (col1 - col0 + 1) > GRID_MAX_CELLS:
                return None
            for row in range(row0, row1 + 1):
                for col in range(col0, col1 + 1):
                    cells.add((row, col))
            if len(cells) > GRID_MAX_CELLS:
                return None
        return frozenset(cells)

    # ------------------------------------------------------------------
    # Mutation hook (conformance harness only)
    # ------------------------------------------------------------------

    @property
    def known_channel_mask(self) -> int:
        """Mask covering every channel the artifact has assigned a bit."""
        return (1 << len(self._bit_channels)) - 1

    def mutated_copy(self, *, compiled=None, zero_dependency_masks=False):
        """Return a copy with substituted internals — a deliberate-bug hook.

        The conformance mutation smokes (:mod:`repro.conformance.runner`)
        use this to build *broken* artifacts — off-by-one interval
        boundaries, zeroed dependency bitmasks — that the three-way
        differential sweep must catch.  Candidate memos are reset so the
        substituted rules are actually consulted.  Never used on the
        serving path.
        """
        import copy

        clone = copy.copy(self)
        clone._candidate_memo = OrderedDict()
        clone._seg_mask_memo = dict(self._seg_mask_memo)
        if compiled is not None:
            clone.compiled = tuple(compiled)
        if zero_dependency_masks:
            clone._channel_ctx_masks = [0] * len(self._channel_ctx_masks)
            clone._revealing = tuple((bit, 0) for bit, _ in self._revealing)
        return clone

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _candidates(self, principals: FrozenSet[str]) -> tuple:
        """Deduplicated candidate rules in the interpreter's bucket order.

        Returns ``(candidates, scope_filters)`` where ``scope_filters``
        is the entry's per-channel-tuple filter memo consumed by
        :meth:`_scope_filtered`.
        """
        memo = self._candidate_memo
        cached = memo.get(principals)
        if cached is not None:
            return cached
        seen: set = set()
        out: list = []
        compiled = self.compiled
        for key in [None, *sorted(principals)]:
            for index in self._buckets.get(key, ()):
                cr = compiled[index]
                rid = cr.rule.rule_id
                if rid not in seen:
                    seen.add(rid)
                    out.append(cr)
        result = (tuple(out), {})
        if len(memo) >= CANDIDATE_MEMO_MAX:
            memo.popitem(last=False)
        memo[principals] = result
        return result

    def _scope_filtered(self, entry: tuple, channels: tuple) -> tuple:
        """Candidates that could apply to a segment with these channels.

        A rule with a sensor scope that shares no channel with the
        segment can never apply, whatever the segment's time, location,
        or context — so the filtered tuple depends only on the channel
        tuple and is memoized per candidate entry.  Sample windows from
        one device repeat a handful of channel tuples, so batch
        evaluation walks only the rules that could matter.
        """
        base, filters = entry
        cached = filters.get(channels)
        if cached is None:
            seg_mask = self._segment_mask(channels)
            cached = tuple(
                cr
                for cr in base
                if cr.scope_mask is None or (cr.scope_mask & seg_mask)
            )
            if len(filters) >= 64:
                filters.clear()  # bound per-entry growth; rebuilt on demand
            filters[channels] = cached
        return cached

    def _segment_mask(self, channels: tuple) -> int:
        """Bitmask of a segment's channel tuple (memoized per tuple)."""
        mask = self._seg_mask_memo.get(channels)
        if mask is None:
            mask = 0
            for name in channels:
                mask |= 1 << self._channel_bit(name)
            self._seg_mask_memo[channels] = mask
        return mask

    def evaluate_batch(
        self, principals: FrozenSet[str], segments: Iterable[WaveSegment]
    ) -> list:
        """Evaluate a whole window of segments for one principal set.

        Candidate resolution (bucket walk + dedup) happens once for the
        batch; per-segment work starts at the piece-invariant match.
        Returns released pieces in segment order, exactly as the
        interpreter's ``evaluate`` loop would.
        """
        entry = self._candidates(principals)
        bucketed_out = len(self.compiled) - len(entry[0])
        out: list = []
        n = 0
        for segment in segments:
            n += 1
            out.extend(
                self._evaluate_segment(
                    self._scope_filtered(entry, segment.channels), segment
                )
            )
        if self._c_batches is not None:
            self._c_batches.inc()
            self._c_segments.inc(n)
            self._c_bucket_skips.inc(bucketed_out * n)
        return out

    def evaluate_segment(
        self, principals: FrozenSet[str], segment: WaveSegment
    ) -> list:
        """Evaluate one segment for one principal set; released pieces."""
        entry = self._candidates(principals)
        released = self._evaluate_segment(
            self._scope_filtered(entry, segment.channels), segment
        )
        if self._c_batches is not None:
            self._c_segments.inc()
            self._c_bucket_skips.inc(len(self.compiled) - len(entry[0]))
        return released

    def _evaluate_segment(self, candidates: tuple, segment: WaveSegment) -> list:
        seg_mask = self._segment_mask(segment.channels)
        location = segment.location
        context = segment.context
        grid_allowed: Optional[frozenset] = None
        if location is not None and self._grid:
            cell = (
                math.floor((location.lat + 90.0) / GRID_DEGREES),
                math.floor((location.lon + 180.0) / GRID_DEGREES),
            )
            grid_allowed = self._grid.get(cell, self._empty_cell)

        applicable: list = []
        has_allow = False
        grid_pruned = 0
        for cr in candidates:
            if cr.has_location:
                if location is None or not cr.regions:
                    continue
                if (
                    cr.grid_indexed
                    and grid_allowed is not None
                    and cr.index not in grid_allowed
                ):
                    grid_pruned += 1
                    continue
                if not any(region.contains(location) for region in cr.regions):
                    continue
            if cr.ctx_req:
                matched = True
                for category, accepted in cr.ctx_req:
                    value = context.get(category)
                    if value is None or value not in accepted:
                        matched = False
                        break
                if not matched:
                    continue
            if cr.scope_mask is not None and not (cr.scope_mask & seg_mask):
                continue
            applicable.append(cr)
            if cr.kind == _KIND_ALLOW:
                has_allow = True

        if self._c_batches is not None and grid_pruned:
            self._c_grid_prunes.inc(grid_pruned)
        if not has_allow:
            if self._c_batches is not None:
                self._c_default_deny.inc()
            return []  # default deny: nothing grants access

        released: list = []
        for piece, piece_rules in self._time_pieces(segment, applicable):
            item = self._release_piece(segment, piece, piece_rules, seg_mask)
            if item is not None and not item.is_empty():
                released.append(item)
        return released

    def _matching_windows(self, cr: CompiledRule, start: int, end: int) -> list:
        """The rule's matching sub-windows of ``[start, end)``, coalesced.

        Equivalent to ``rule.time.matching_intervals(span)`` but over the
        precompiled structures: static windows are already disjoint and
        sorted, weekly windows expand from per-weekday ms offsets with
        weekday-by-arithmetic instead of ``datetime``, and the final merge
        produces the same canonical disjoint list ``coalesce_intervals``
        would (both compute the canonical decomposition of the same
        union, and neither side carries zero-length windows).
        """
        out: list = []
        for ws, we in cr.static_windows:
            if we <= start:
                continue
            if ws >= end:
                break
            out.append((ws if ws > start else start, we if we < end else end))
        day_windows = cr.day_windows
        if day_windows is not None:
            day = (start // _MS_PER_DAY) * _MS_PER_DAY
            while day < end:
                for lo, hi in day_windows[(day // _MS_PER_DAY + 3) % 7]:
                    ws = day + lo
                    we = day + hi
                    if we > start and ws < end:
                        out.append((ws if ws > start else start, we if we < end else end))
                day += _MS_PER_DAY
            out.sort()
        merged: list = []
        for ws, we in out:
            if merged and ws <= merged[-1][1]:
                if we > merged[-1][1]:
                    merged[-1][1] = we
            else:
                merged.append([ws, we])
        return merged

    def _time_pieces(self, segment: WaveSegment, applicable: list) -> list:
        """Split the segment span where time-condition matching flips.

        Mirrors the interpreter's ``_time_pieces``: every timed rule's
        matching windows contribute boundary points, and a piece belongs
        to a timed rule iff some window contains it — which, because all
        window boundaries are piece boundaries, reduces to a start-point
        test walked with a per-rule pointer over the sorted windows.
        """
        span = segment.interval
        timed = [cr for cr in applicable if not cr.time_unconstrained]
        if not timed:
            return [(span, applicable)]
        boundaries = {span.start, span.end}
        windows: dict = {}
        for cr in timed:
            ivs = self._matching_windows(cr, span.start, span.end)
            windows[cr.index] = [ivs, 0]
            for ws, we in ivs:
                boundaries.add(ws)
                boundaries.add(we)
        points = sorted(boundaries)
        pieces: list = []
        for lo, hi in zip(points, points[1:]):
            piece_rules: list = []
            for cr in applicable:
                if cr.time_unconstrained:
                    piece_rules.append(cr)
                    continue
                entry = windows[cr.index]
                ivs, pos = entry
                while pos < len(ivs) and ivs[pos][1] <= lo:
                    pos += 1
                entry[1] = pos
                if pos < len(ivs) and ivs[pos][0] <= lo:
                    piece_rules.append(cr)
            pieces.append((Interval(lo, hi), piece_rules))
        return pieces

    def _bit_names(self, mask: int) -> list:
        """Sorted channel names of a mask's set bits."""
        names = self._bit_channels
        out: list = []
        bit = 0
        while mask:
            if mask & 1:
                out.append(names[bit])
            mask >>= 1
            bit += 1
        out.sort()
        return out

    def _release_piece(
        self,
        segment: WaveSegment,
        piece: Interval,
        rules: list,
        seg_mask: int,
    ) -> Optional[ReleasedSegment]:
        # Deny-first short-circuit: a matching unscoped Deny suppresses
        # the whole piece no matter what else matches (deny dominance —
        # invariant C8), so check it before computing any grant.
        has_allow = False
        for cr in rules:
            if cr.kind == _KIND_DENY and cr.scope_mask is None:
                if self._c_batches is not None:
                    self._c_full_deny.inc()
                return None
            if cr.kind == _KIND_ALLOW:
                has_allow = True
        if not has_allow:
            return None  # this window grants nothing

        granted = 0
        for cr in rules:
            if cr.kind == _KIND_ALLOW:
                granted |= seg_mask if cr.scope_mask is None else cr.scope_mask & seg_mask

        withheld: dict = {}
        for cr in rules:
            if cr.kind != _KIND_DENY:
                continue
            blocked = cr.scope_mask & seg_mask
            hit = blocked & granted
            if hit:
                reason = f"denied by rule {cr.rule.rule_id}"
                for name in self._bit_names(hit):
                    withheld[name] = reason
                granted &= ~blocked

        # Label eligibility, judged on the post-deny grant (before the
        # closure): which categories could the granted channels reveal?
        eligible = 0
        for cat_bit, revealing_mask in self._revealing:
            if revealing_mask & granted:
                eligible |= 1 << cat_bit

        # Coarsest-wins abstraction folding, as ladder-index maxima.
        loc_idx = 0
        time_idx = 0
        ctx_idx: Optional[list] = None
        for cr in rules:
            if cr.kind != _KIND_ABSTRACTION:
                continue
            if cr.abs_location > loc_idx:
                loc_idx = cr.abs_location
            if cr.abs_time > time_idx:
                time_idx = cr.abs_time
            for pos, level in cr.abs_contexts:
                if ctx_idx is None:
                    ctx_idx = list(self._ctx_zero)
                if level > ctx_idx[pos]:
                    ctx_idx[pos] = level
        levels = self._ctx_zero if ctx_idx is None else ctx_idx
        if (
            loc_idx == _NOTSHARE_LOC
            and time_idx == _NOTSHARE_TIME
            and all(
                levels[i] == self._ctx_notshare[i] for i in range(len(levels))
            )
        ):
            return None  # every aspect at NotShare — equivalent to deny

        # Dependency closure via bitmasks: a raw channel flows only if
        # every context it could reveal is itself shared raw.  Graph-only
        # categories never appear in raw_mask, so revealing one always
        # blocks — matching the interpreter's raw_contexts() ⊆ registry.
        if self.enforce_closure:
            raw_mask = 0
            for i, level in enumerate(levels):
                if level == 0:
                    raw_mask |= 1 << i
            restricted_mask = self._sharing_cats_mask & ~raw_mask
            closed = 0
            probe = granted
            bit = 0
            masks = self._channel_ctx_masks
            while probe:
                if probe & 1 and masks[bit] & ~raw_mask:
                    closed |= 1 << bit
                probe >>= 1
                bit += 1
            if closed:
                names = self._bit_channels
                cats = self._sharing_cats
                b = 0
                rest = closed
                while rest:
                    if rest & 1:
                        revealed = sorted(
                            cats[i]
                            for i in range(len(cats))
                            if (masks[b] & restricted_mask) >> i & 1
                        )
                        withheld[names[b]] = (
                            "withheld: could reveal restricted context(s) "
                            f"{', '.join(revealed)}"
                        )
                    rest >>= 1
                    b += 1
                granted &= ~closed

        # Location coarser than raw coordinates forbids raw GPS channels.
        if loc_idx != 0:
            gps_hit = granted & self._gps_mask
            if gps_hit:
                reason = (
                    f"withheld: location abstracted to {LOCATION_LEVELS[loc_idx]}"
                )
                for name in self._bit_names(gps_hit):
                    withheld[name] = reason
            granted &= ~self._gps_mask

        # Shape the surviving data — shared mechanics with the
        # interpreter (slicing, channel selection, timestamp re-anchor).
        sliced = segment.slice_time(piece)
        out_segment: Optional[WaveSegment] = None
        if sliced is not None and granted:
            out_segment = sliced.select_channels(self._bit_names(granted))

        time_level = TIME_LEVELS[time_idx]
        timestamp: Optional[int] = None
        if time_idx != _NOTSHARE_TIME:
            timestamp = truncate_timestamp(piece.start, time_level)
        if out_segment is not None:
            out_segment = RuleEngine._shape_timestamps(out_segment, time_level, timestamp)
            out_segment = out_segment.drop_location()

        location_level = LOCATION_LEVELS[loc_idx]
        location = None
        if segment.location is not None and loc_idx != _NOTSHARE_LOC:
            location = abstract_location(segment.location, location_level)

        labels: dict = {}
        for category, fine_label in segment.context.items():
            pos = self._sharing_pos.get(category)
            if pos is None or not (eligible >> self._cat_bit[category]) & 1:
                continue
            label = coarsen_context_label(
                category, fine_label, self._ladders[pos][levels[pos]]
            )
            if label is not None:
                labels[category] = label

        if out_segment is None and not labels:
            return None  # bare location/timestamp metadata would leak

        return ReleasedSegment(
            contributor=segment.contributor,
            interval=piece,
            segment=out_segment,
            timestamp=timestamp,
            time_level=time_level,
            location=location,
            location_level=location_level,
            context_labels=labels,
            withheld=withheld,
        )


def compile_rules(
    rules: Iterable[Rule] = (),
    places: Optional[Mapping[str, LabeledPlace]] = None,
    *,
    dependencies: Optional[DependencyGraph] = None,
    enforce_closure: bool = True,
    contributor: str = "",
    obs=None,
) -> CompiledRuleSet:
    """Compile one contributor's rules into a :class:`CompiledRuleSet`."""
    return CompiledRuleSet(
        rules,
        places,
        dependencies=dependencies,
        enforce_closure=enforce_closure,
        contributor=contributor,
        obs=obs,
    )


class CompiledRuleCache:
    """Epoch-keyed LRU of compiled artifacts, beside the release cache.

    A stale compiled artifact is a privacy leak of exactly the same shape
    as a stale cached decision, so the key copies the PR 5 argument: it
    folds in the **store-wide rules-version epoch**, which moves on every
    rule mutation for any contributor and on every post-recovery/failover
    ``restore`` — a rule state this process has never evaluated under can
    never hit an old entry.  Places edits move no version counter, so
    every site that wholesale-invalidates the release cache (places
    edits, recovery, replication places-apply, promotion) calls
    :meth:`invalidate_all` here too.

    Compile telemetry (``rules_compile_total``, ``rules_compile_seconds``,
    hits, invalidations) is exported through the shared metrics registry.
    """

    def __init__(self, capacity: int = 64, *, obs=None, store: str = ""):
        if capacity <= 0:
            raise RuleError(f"compiled-rule cache capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self._obs = obs if obs is not None and getattr(obs, "enabled", False) else None
        if self._obs is not None:
            m = self._obs.metrics
            labels = {"store": store} if store else {}
            self._c_compiles = m.counter("rules_compile_total", **labels)
            self._h_compile_s = m.histogram("rules_compile_seconds", **labels)
            self._c_hits = m.counter("compiled_cache_hits_total", **labels)
            self._c_invalidations = m.counter(
                "compiled_cache_invalidations_total", **labels
            )
        else:
            self._c_compiles = None

    def __len__(self) -> int:
        return len(self._entries)

    def artifact_for(
        self,
        contributor: str,
        *,
        epoch: int,
        fail_closed: bool,
        rules: Iterable[Rule],
        places: Optional[Mapping[str, LabeledPlace]] = None,
        dependencies: Optional[DependencyGraph] = None,
        enforce_closure: bool = True,
    ) -> CompiledRuleSet:
        """The compiled artifact for one contributor at one rule epoch.

        ``rules`` must already reflect ``fail_closed`` (the service passes
        an empty tuple for a fail-closed contributor); the flag still
        rides the key so lifting fail-closed without an epoch move could
        never resurrect a deny-everything artifact.
        """
        key = (contributor, int(epoch), bool(fail_closed), bool(enforce_closure))
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            if self._c_compiles is not None:
                self._c_hits.inc()
            return entry
        started = _time.perf_counter()
        artifact = CompiledRuleSet(
            rules,
            places,
            dependencies=dependencies,
            enforce_closure=enforce_closure,
            contributor=contributor,
            obs=self._obs,
        )
        if self._c_compiles is not None:
            self._c_compiles.inc()
            self._h_compile_s.observe(_time.perf_counter() - started)
        self._entries[key] = artifact
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return artifact

    def invalidate_all(self, reason: str = "") -> int:
        """Drop every artifact (places edits, recovery, promotion).

        Returns the number of entries dropped; ``reason`` is for logs and
        symmetry with :meth:`ReleaseCache.invalidate_all`.
        """
        del reason
        dropped = len(self._entries)
        self._entries.clear()
        if self._c_compiles is not None and dropped:
            self._c_invalidations.inc(dropped)
        return dropped
