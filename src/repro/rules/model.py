"""Privacy-rule data model (paper Table 1 and Fig. 4).

A rule is a conjunction of optional *conditions* plus one *action*:

========= =====================================================
Condition Attributes (Table 1a)
========= =====================================================
Consumer  user names, group names, study names (OR within list)
Location  pre-defined labels and/or map regions (OR)
Time      continuous ranges and/or weekly repeated windows (OR)
Sensor    channel or channel-group names (OR); scopes the action
Context   context labels; AND across categories, OR within one
========= =====================================================

Actions: ``Allow`` (raw data flows), ``Deny`` (nothing flows for the scoped
sensors), or ``Abstraction`` (a map from aspect — Location, Time, Activity,
Stress, Smoking, Conversation — to a ladder level, Table 1b).

Conflict-resolution and dependency-closure semantics live in
:mod:`repro.rules.engine`; this module is pure data with validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import RuleError
from repro.sensors.channels import expand_channel_group
from repro.sensors.contexts import CONTEXTS, label_category
from repro.util.geo import LOCATION_GRANULARITIES, Region
from repro.util.idgen import stable_id
from repro.util.timeutil import TIME_GRANULARITIES, TimeCondition

#: Abstraction aspects that are not context categories.
LOCATION_ASPECT = "Location"
TIME_ASPECT = "Time"

#: Ladder levels for the Location aspect (Table 1b, Location row).
LOCATION_LEVELS = tuple(list(LOCATION_GRANULARITIES) + ["NotShare"])
#: Ladder levels for the Time aspect (Table 1b, Time row).
TIME_LEVELS = tuple(list(TIME_GRANULARITIES) + ["NotShare"])

ACTION_ALLOW = "allow"
ACTION_DENY = "deny"
ACTION_ABSTRACTION = "abstraction"


def _aspect_levels(aspect: str) -> tuple:
    if aspect == LOCATION_ASPECT:
        return LOCATION_LEVELS
    if aspect == TIME_ASPECT:
        return TIME_LEVELS
    spec = CONTEXTS.get(aspect)
    if spec is None:
        raise RuleError(
            f"unknown abstraction aspect {aspect!r}; valid aspects: "
            f"{[LOCATION_ASPECT, TIME_ASPECT] + list(CONTEXTS)}"
        )
    return spec.abstraction_levels


@dataclass(frozen=True)
class Action:
    """The effect of a matching rule.

    ``abstraction`` is only meaningful when ``kind == "abstraction"``; it
    maps aspects to ladder levels and is validated against each aspect's
    ladder.  ``"NotShared"`` (the spelling in the paper's Fig. 4) is
    accepted as an alias of ``"NotShare"``.
    """

    kind: str
    abstraction: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (ACTION_ALLOW, ACTION_DENY, ACTION_ABSTRACTION):
            raise RuleError(f"unknown action kind: {self.kind!r}")
        if self.kind != ACTION_ABSTRACTION and self.abstraction:
            raise RuleError(f"{self.kind} action must not carry abstraction levels")
        if self.kind == ACTION_ABSTRACTION and not self.abstraction:
            raise RuleError("abstraction action needs at least one aspect level")
        normalized = {}
        for aspect, level in self.abstraction.items():
            if level == "NotShared":
                level = "NotShare"
            levels = _aspect_levels(aspect)
            if level not in levels:
                raise RuleError(
                    f"aspect {aspect!r} has no level {level!r}; valid levels: {levels}"
                )
            normalized[aspect] = level
        object.__setattr__(self, "abstraction", normalized)

    @property
    def is_allow(self) -> bool:
        """True for allow actions."""
        return self.kind == ACTION_ALLOW

    @property
    def is_deny(self) -> bool:
        """True for deny actions."""
        return self.kind == ACTION_DENY

    @property
    def is_abstraction(self) -> bool:
        """True for abstraction (reduced-fidelity sharing) actions."""
        return self.kind == ACTION_ABSTRACTION


ALLOW = Action(ACTION_ALLOW)
DENY = Action(ACTION_DENY)


def abstraction(**levels: str) -> Action:
    """Convenience constructor: ``abstraction(Stress="NotShare")``."""
    return Action(ACTION_ABSTRACTION, dict(levels))


@dataclass(frozen=True)
class Rule:
    """One privacy rule.  Empty condition tuples mean "unconstrained".

    Attributes:
        consumers: consumer user/group/study names this rule applies to.
        location_labels: contributor-defined place labels ("home", "UCLA").
        location_regions: explicit map regions.
        time: time condition (ranges and/or repeated windows).
        sensors: channel or group names the action is scoped to.
        contexts: context condition labels ("Drive", "Conversation", ...).
        action: allow / deny / abstraction.
        rule_id: stable id; derived from content when omitted.
        note: free-form human description (shown in the web UI).
    """

    consumers: tuple[str, ...] = ()
    location_labels: tuple[str, ...] = ()
    location_regions: tuple[Region, ...] = ()
    time: TimeCondition = field(default_factory=TimeCondition)
    sensors: tuple[str, ...] = ()
    contexts: tuple[str, ...] = ()
    action: Action = ALLOW
    rule_id: str = ""
    note: str = ""

    def __post_init__(self) -> None:
        for label in self.contexts:
            label_category(label)  # raises on unknown labels
        for name in self.sensors:
            expand_channel_group(name)  # raises on unknown channels/groups
        if not self.rule_id:
            object.__setattr__(
                self,
                "rule_id",
                stable_id(
                    self.consumers,
                    self.location_labels,
                    tuple(r.to_json() for r in self.location_regions),
                    self.time.to_json(),
                    self.sensors,
                    self.contexts,
                    self.action.kind,
                    tuple(sorted(self.action.abstraction.items())),
                ),
            )

    # ------------------------------------------------------------------
    # Introspection used by the engine and the broker's search
    # ------------------------------------------------------------------

    def sensor_channels(self) -> Optional[frozenset]:
        """Channels the action is scoped to, or None for "all channels"."""
        if not self.sensors:
            return None
        out: set = set()
        for name in self.sensors:
            out.update(expand_channel_group(name))
        return frozenset(out)

    def context_requirements(self) -> dict:
        """Condition labels grouped by category (AND across categories)."""
        grouped: dict[str, list] = {}
        for label in self.contexts:
            grouped.setdefault(label_category(label), []).append(label)
        return grouped

    def is_unconditional(self) -> bool:
        """True when only the consumer condition (if any) constrains it."""
        return (
            not self.location_labels
            and not self.location_regions
            and self.time.is_unconstrained()
            and not self.sensors
            and not self.contexts
        )

    def describe(self) -> str:
        """One-line English summary, used by the web UI rule list."""
        parts = []
        who = ", ".join(self.consumers) if self.consumers else "everyone"
        if self.action.is_allow:
            parts.append(f"Allow {who}")
        elif self.action.is_deny:
            parts.append(f"Deny {who}")
        else:
            levels = ", ".join(f"{k}={v}" for k, v in sorted(self.action.abstraction.items()))
            parts.append(f"For {who}, abstract [{levels}]")
        if self.sensors:
            parts.append(f"sensors {', '.join(self.sensors)}")
        if self.location_labels or self.location_regions:
            locs = list(self.location_labels) + [r.kind for r in self.location_regions]
            parts.append(f"at {', '.join(locs)}")
        if not self.time.is_unconstrained():
            parts.append("during specified times")
        if self.contexts:
            parts.append(f"while {', '.join(self.contexts)}")
        return "; ".join(parts)
