"""The privacy-rule evaluation engine.

For every (consumer, wave segment) pair the engine decides what — if
anything — leaves the remote data store:

1. **Bucketing** — rules are pre-indexed by consumer name so evaluation
   cost scales with the rules that *could* apply, not the total rule count
   (benchmark C6 measures this).
2. **Matching** — piece-invariant conditions (consumer, location, context,
   sensor overlap) are checked once per segment; time conditions then
   split the segment into pieces with a constant matching-rule set.
3. **Conflict resolution** — default deny (no matching Allow ⇒ nothing
   flows); Deny overrides Allow within its sensor scope; abstraction
   levels combine coarsest-wins.
4. **Dependency closure** — raw channels that could re-reveal any context
   not shared at raw level are withheld (Section 5.1's respiration/smoking
   example); GPS channels are additionally withheld whenever location is
   abstracted below raw coordinates.
5. **Release shaping** — surviving channels are sliced to the piece,
   timestamps truncated to the effective time level, location abstracted
   via the gazetteer, and context labels coarsened per ladder.

The result is a list of :class:`ReleasedSegment` — the exact payload the
query API returns to the data consumer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, FrozenSet, Iterable, Mapping, Optional

from repro.datastore.wavesegment import WaveSegment
from repro.exceptions import RuleError
from repro.rules.abstraction import EffectiveSharing
from repro.rules.conditions import rule_applies
from repro.rules.dependency import DEFAULT_DEPENDENCIES, DependencyGraph
from repro.rules.model import Rule
from repro.sensors.channels import GPS_LAT, GPS_LON
from repro.util.geo import LabeledPlace, abstract_location
from repro.util.timeutil import Interval, truncate_timestamp

_GPS_CHANNELS = frozenset((GPS_LAT.name, GPS_LON.name))


def _self_membership(consumer: str) -> FrozenSet[str]:
    """Default membership resolver: a consumer is only itself."""
    return frozenset((consumer,))


@dataclass
class ReleasedSegment:
    """What a data consumer actually receives for one segment piece.

    Attributes:
        contributor: data owner.
        interval: the span of the underlying piece (engine bookkeeping;
            not revealed beyond ``timestamp``'s precision).
        segment: surviving raw channels, time-sliced and timestamp-shaped,
            or None when only labels are released.
        timestamp: the released (possibly truncated) start time, or None
            when the Time aspect is NotShare.
        time_level: the effective time abstraction level.
        location: raw ``[lat, lon]``, an abstract place label string, or
            None when location is NotShare/unknown.
        location_level: the effective location abstraction level.
        context_labels: released context labels, post-coarsening.
        withheld: channel -> human-readable reason, for UI display.
    """

    contributor: str
    interval: Interval
    segment: Optional[WaveSegment] = None
    timestamp: Optional[int] = None
    time_level: str = "milliseconds"
    location: object = None
    location_level: str = "coordinates"
    context_labels: dict = field(default_factory=dict)
    withheld: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Samples in the released piece; 0 when data is withheld."""
        return self.segment.n_samples if self.segment is not None else 0

    def channels(self) -> tuple:
        """Channels of the released piece; empty when data is withheld."""
        return self.segment.channels if self.segment is not None else ()

    def is_empty(self) -> bool:
        """True when no data, context, or location is actually released."""
        return self.segment is None and not self.context_labels and self.location is None

    def to_json(self) -> dict:
        """Deterministic JSON wire form (what the query API returns)."""
        return {
            "Contributor": self.contributor,
            "Timestamp": self.timestamp,
            "TimeLevel": self.time_level,
            "Location": self.location,
            "LocationLevel": self.location_level,
            "ContextLabels": dict(self.context_labels),
            "Segment": self.segment.to_json() if self.segment is not None else None,
            "Withheld": dict(self.withheld),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ReleasedSegment":
        """Parse a released piece from its JSON wire form."""
        seg = obj.get("Segment")
        segment = WaveSegment.from_json(seg) if seg else None
        if segment is not None:
            interval = segment.interval
        else:
            ts = obj.get("Timestamp") or 0
            interval = Interval(ts, ts + 1)
        return cls(
            contributor=str(obj.get("Contributor", "")),
            interval=interval,
            segment=segment,
            timestamp=obj.get("Timestamp"),
            time_level=str(obj.get("TimeLevel", "milliseconds")),
            location=obj.get("Location"),
            location_level=str(obj.get("LocationLevel", "coordinates")),
            context_labels=dict(obj.get("ContextLabels", {})),
            withheld=dict(obj.get("Withheld", {})),
        )


class RuleEngine:
    """Evaluates one contributor's rules against outgoing segments.

    Determinism contract: for fixed inputs — rules, places, the
    membership function's answers, the dependency graph, and the segments
    themselves — evaluation is a pure function producing byte-identical
    :meth:`ReleasedSegment.to_json` output.  The release cache
    (:mod:`repro.datastore.cache`) leans on exactly this: its key folds
    in every one of those inputs (rules via the store-wide epoch,
    membership directly, places via wholesale invalidation, segments via
    the content fingerprint), so replaying a cached decision is
    indistinguishable from re-running the engine.  Anything that would
    make evaluation nondeterministic (wall-clock reads, unordered
    iteration over rule sets) must not be introduced here without
    revisiting the cache key.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        places: Optional[Mapping[str, LabeledPlace]] = None,
        *,
        membership: Optional[Callable[[str], FrozenSet[str]]] = None,
        dependencies: Optional[DependencyGraph] = None,
        enforce_closure: bool = True,
        engine: str = "interpreted",
        compiled=None,
        obs=None,
    ):
        if engine not in ("interpreted", "compiled"):
            raise RuleError(f"unknown engine mode {engine!r}")
        self.places = dict(places or {})
        self.membership = membership or _self_membership
        self.dependencies = dependencies or DEFAULT_DEPENDENCIES
        self.enforce_closure = enforce_closure
        #: "interpreted" walks rules per evaluation; "compiled" evaluates
        #: through a :class:`~repro.rules.compiler.CompiledRuleSet` —
        #: either one injected via ``compiled=`` (the service's cached
        #: artifact) or one compiled lazily on first use.  Passing
        #: ``compiled=`` implies compiled mode.
        self.engine_mode = "compiled" if (engine == "compiled" or compiled is not None) else "interpreted"
        self._all_rules: list[Rule] = []
        # consumer name -> rules naming it; None key holds wildcard rules.
        # None (the whole dict) means "not built yet": the injected-artifact
        # fast path skips bucket construction entirely, since the artifact
        # carries its own buckets; candidate_rules() rebuilds on demand.
        self._buckets: Optional[dict] = {None: []}
        self._compiled = None
        # Observability (repro.obs.Observability): instruments are bound
        # once here so the per-segment cost is one None-check plus integer
        # adds; with obs=None instrumentation costs nothing.
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            m = self.obs.metrics
            self._c_evals = m.counter("rule_evaluations_total")
            self._c_denials = m.counter("rule_denials_total")
            self._c_abstractions = m.counter("rule_abstractions_total")
            self._c_closure = m.counter("rule_closure_withheld_total")
            self._h_eval = m.histogram("rule_eval_us")
        else:
            self._c_evals = None
            self._c_denials = None
            self._c_abstractions = None
            self._c_closure = None
            self._h_eval = None
        if compiled is not None:
            # Cached-artifact injection: take the rule list as-is and keep
            # the artifact; skip per-construction bucketing (the artifact
            # owns the buckets), which is part of the compiled speedup for
            # the service's engine-per-query pattern.
            self._all_rules = list(rules)
            self._buckets = None
            self._compiled = compiled
        else:
            self.set_rules(rules)

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------

    @property
    def rules(self) -> tuple:
        """The engine's current rules, as a tuple."""
        return tuple(self._all_rules)

    def set_rules(self, rules: Iterable[Rule]) -> None:
        """Replace the engine's rule set."""
        self._all_rules = []
        self._buckets = {None: []}
        self._compiled = None
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: Rule) -> None:
        """Append one rule to the engine's rule set."""
        self._compiled = None  # any mutation invalidates the lazy artifact
        self._all_rules.append(rule)
        if self._buckets is None:
            self._rebuild_buckets()
            return
        if not rule.consumers:
            self._buckets[None].append(rule)
        else:
            for consumer in rule.consumers:
                self._buckets.setdefault(consumer, []).append(rule)

    def _rebuild_buckets(self) -> None:
        """(Re)build consumer buckets from the full rule list."""
        buckets: dict = {None: []}
        for rule in self._all_rules:
            if not rule.consumers:
                buckets[None].append(rule)
            else:
                for consumer in rule.consumers:
                    buckets.setdefault(consumer, []).append(rule)
        self._buckets = buckets

    def candidate_rules(self, principals: FrozenSet[str]) -> list:
        """Rules whose consumer condition could cover these principals."""
        if self._buckets is None:
            self._rebuild_buckets()
        seen: set = set()
        out: list[Rule] = []
        for key in [None, *sorted(principals)]:
            for rule in self._buckets.get(key, ()):
                if rule.rule_id not in seen:
                    seen.add(rule.rule_id)
                    out.append(rule)
        return out

    def compiled_artifact(self):
        """The engine's compiled form, compiling lazily on first use.

        Returns the injected artifact when one was passed at
        construction; otherwise compiles the current rule set (and caches
        it until the next rule mutation).  Import is deferred because the
        compiler module imports this one.
        """
        if self._compiled is None:
            from repro.rules.compiler import compile_rules

            self._compiled = compile_rules(
                self._all_rules,
                self.places,
                dependencies=self.dependencies,
                enforce_closure=self.enforce_closure,
                obs=self.obs,
            )
        return self._compiled

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, consumer: str, segments: Iterable[WaveSegment]) -> list:
        """Evaluate many segments; returns the released pieces in order."""
        if self.engine_mode == "compiled":
            artifact = self.compiled_artifact()
            principals = self.membership(consumer)
            if self.obs is None:
                return artifact.evaluate_batch(principals, segments)
            with self.obs.tracer.start_span(
                "rules.evaluate", consumer=consumer
            ) as span:
                segments = list(segments)
                out = artifact.evaluate_batch(principals, segments)
                self._c_evals.inc(len(segments))
                span.set_attributes(segments_in=len(segments), pieces_out=len(out))
            return out
        if self.obs is None:
            out = []
            for segment in segments:
                out.extend(self.evaluate_segment(consumer, segment))
            return out
        with self.obs.tracer.start_span("rules.evaluate", consumer=consumer) as span:
            out = []
            n_in = 0
            for segment in segments:
                n_in += 1
                out.extend(self.evaluate_segment(consumer, segment))
            span.set_attributes(segments_in=n_in, pieces_out=len(out))
        return out

    def evaluate_segment(self, consumer: str, segment: WaveSegment) -> list:
        """Evaluate one segment for one consumer; returns released pieces."""
        if self._h_eval is None:
            return self._dispatch_segment(consumer, segment)
        started = time.perf_counter()
        released = self._dispatch_segment(consumer, segment)
        self._h_eval.observe((time.perf_counter() - started) * 1e6)
        self._c_evals.inc()
        return released

    def _dispatch_segment(self, consumer: str, segment: WaveSegment) -> list:
        """Route one segment to the compiled or interpreted pipeline."""
        if self.engine_mode == "compiled":
            return self.compiled_artifact().evaluate_segment(
                self.membership(consumer), segment
            )
        return self._evaluate_segment(consumer, segment)

    def _evaluate_segment(self, consumer: str, segment: WaveSegment) -> list:
        principals = self.membership(consumer)
        applicable = [
            rule
            for rule in self.candidate_rules(principals)
            if rule_applies(rule, principals, segment, self.places)
        ]
        if not any(rule.action.is_allow for rule in applicable):
            if self._c_denials is not None:
                self._c_denials.inc()
            return []  # default deny: nothing grants access
        pieces = self._time_pieces(segment, applicable)
        released = []
        for piece, piece_rules in pieces:
            item = self._release_piece(segment, piece, piece_rules)
            if item is not None and not item.is_empty():
                released.append(item)
        return released

    def _time_pieces(self, segment: WaveSegment, rules: list) -> list:
        """Split the segment span where time-condition matching flips.

        Returns ``[(piece_interval, rules_matching_that_piece), ...]``.
        """
        span = segment.interval
        timed = [r for r in rules if not r.time.is_unconstrained()]
        if not timed:
            return [(span, rules)]
        boundaries = {span.start, span.end}
        matches: dict = {}
        for rule in timed:
            ivs = rule.time.matching_intervals(span)
            matches[rule.rule_id] = ivs
            for iv in ivs:
                boundaries.add(iv.start)
                boundaries.add(iv.end)
        points = sorted(boundaries)
        pieces = []
        for lo, hi in zip(points, points[1:]):
            piece = Interval(lo, hi)
            if piece.is_empty():
                continue
            piece_rules = []
            for rule in rules:
                if rule.time.is_unconstrained():
                    piece_rules.append(rule)
                elif any(iv.contains_interval(piece) for iv in matches[rule.rule_id]):
                    piece_rules.append(rule)
            pieces.append((piece, piece_rules))
        return pieces

    def _release_piece(
        self, segment: WaveSegment, piece: Interval, rules: list
    ) -> Optional[ReleasedSegment]:
        allow_rules = [r for r in rules if r.action.is_allow]
        if not allow_rules:
            return None  # this window grants nothing

        # Channel grant set: union of the allow rules' sensor scopes.
        granted: set = set()
        for rule in allow_rules:
            scope = rule.sensor_channels()
            granted.update(segment.channels if scope is None else scope & set(segment.channels))

        withheld: dict = {}

        # Deny overrides, within each deny rule's sensor scope.
        for rule in rules:
            if not rule.action.is_deny:
                continue
            scope = rule.sensor_channels()
            blocked = set(segment.channels) if scope is None else scope & set(segment.channels)
            for channel_name in blocked & granted:
                withheld[channel_name] = f"denied by rule {rule.rule_id}"
            granted -= blocked
            if scope is None:
                # A full deny also suppresses labels and location.
                if self._c_denials is not None:
                    self._c_denials.inc()
                return None

        # Context labels are only releasable for categories the granted
        # channels could reveal: an allow scoped to the accelerometer
        # shares Activity labels, never Stress labels.  Eligibility is
        # judged before the closure — abstraction converts a granted raw
        # channel into its label rather than into silence.
        label_eligible = frozenset(
            category
            for category in self.dependencies.contexts
            if self.dependencies.channels_revealing(category) & granted
        )

        # Coarsest-wins abstraction folding.
        sharing = EffectiveSharing()
        abstracted = False
        for rule in rules:
            if rule.action.is_abstraction:
                sharing.apply(rule.action.abstraction)
                abstracted = True
        if abstracted and self._c_abstractions is not None:
            self._c_abstractions.inc()
        if sharing.shares_nothing():
            return None

        # Dependency closure: a raw channel flows only if every context it
        # could reveal is itself shared raw.
        if self.enforce_closure:
            permitted = self.dependencies.raw_permitted_channels(
                granted, sharing.raw_contexts()
            )
            closed_over = granted - permitted
            if closed_over and self._c_closure is not None:
                self._c_closure.inc(len(closed_over))
            for channel_name in closed_over:
                revealed = sorted(
                    self.dependencies.contexts_revealed_by(channel_name)
                    & sharing.restricted_contexts()
                )
                withheld[channel_name] = (
                    f"withheld: could reveal restricted context(s) {', '.join(revealed)}"
                )
            granted = set(permitted)

        # Location coarser than raw coordinates forbids raw GPS channels.
        if not sharing.location_is_raw():
            for channel_name in granted & _GPS_CHANNELS:
                withheld[channel_name] = (
                    f"withheld: location abstracted to {sharing.location_level}"
                )
            granted -= _GPS_CHANNELS

        # Shape the surviving data.
        sliced = segment.slice_time(piece)
        out_segment: Optional[WaveSegment] = None
        if sliced is not None and granted:
            out_segment = sliced.select_channels(sorted(granted))

        timestamp: Optional[int] = None
        if sharing.time_level != "NotShare":
            timestamp = truncate_timestamp(piece.start, sharing.time_level)
        if out_segment is not None:
            out_segment = self._shape_timestamps(out_segment, sharing.time_level, timestamp)
            out_segment = out_segment.drop_location()  # location released separately

        location = None
        if segment.location is not None and sharing.location_level != "NotShare":
            location = abstract_location(segment.location, sharing.location_level)

        labels: dict = {}
        for category, fine_label in segment.context.items():
            if category not in sharing.context_levels or category not in label_eligible:
                continue
            label = sharing.context_label(category, fine_label)
            if label is not None:
                labels[category] = label

        if out_segment is None and not labels:
            # Nothing attributable to the data remains; releasing bare
            # location/timestamp metadata would leak without utility.
            return None

        released = ReleasedSegment(
            contributor=segment.contributor,
            interval=piece,
            segment=out_segment,
            timestamp=timestamp,
            time_level=sharing.time_level,
            location=location,
            location_level=sharing.location_level,
            context_labels=labels,
            withheld=withheld,
        )
        return released

    @staticmethod
    def _shape_timestamps(
        segment: WaveSegment, time_level: str, timestamp: Optional[int]
    ) -> WaveSegment:
        """Re-anchor the released segment's clock to the granted precision.

        At the ``milliseconds`` level the true start is kept.  At coarser
        levels the segment is re-anchored to the truncated timestamp, so
        relative sample spacing survives but the absolute clock does not.
        At ``NotShare`` the segment is anchored at epoch zero.
        """
        if time_level == "milliseconds":
            return segment
        anchor = 0 if timestamp is None else timestamp
        if not segment.is_uniform:
            # Shift the embedded Time column so raw stamps cannot leak.
            from repro.datastore.wavesegment import TIME_CHANNEL

            values = segment.values.copy()
            col = segment.channels.index(TIME_CHANNEL)
            values[:, col] += anchor - segment.start_ms
            return replace(segment, start_ms=anchor, values=values, segment_id="")
        return replace(segment, start_ms=anchor, segment_id="")
