"""Privacy-rule recommendation from a contributor's own data.

The paper's Section 6 shows the loop this module automates: Alice reviews
her collected data, notices she is "frequently stressed while driving",
feels uncomfortable, and adds a rule.  The Personal Data Vault lineage the
paper extends shipped a *privacy rule recommender* for exactly this
purpose.

The recommender scans the owner's stored segments (with their context
annotations) against the owner's current rules and produces
:class:`RuleSuggestion` items for patterns known — from the user study the
paper cites (Raij et al., CHI 2011) — to raise privacy concern:

* sensitive context co-occurrence: stress/conversation/smoking episodes
  concentrated in a specific activity (e.g. stressed while driving);
* sensitive behaviour at a named place (e.g. smoking at work);
* presence of high-leakage raw channels shared without any abstraction
  (microphone, GPS);
* night-time data at home covered by broad allow rules.

Suggestions are *proposals*: each carries the ready-to-add Rule, a
human-readable rationale, and the evidence count, and nothing is applied
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.rules.abstraction import EffectiveSharing
from repro.rules.model import Rule, abstraction
from repro.util.timeutil import RepeatedTime, TimeCondition, WEEKDAY_NAMES

#: (category, sensitive value) pairs worth flagging, with the condition
#: label to use when the co-occurring activity is the trigger.
_SENSITIVE = (
    ("Stress", "Stressed"),
    ("Conversation", "Conversation"),
    ("Smoking", "Smoking"),
)

_ACTIVITY_CONDITION_LABEL = {
    "Still": "Still",
    "Walk": "Walk",
    "Run": "Run",
    "Bike": "Bike",
    "Drive": "Drive",
}


@dataclass(frozen=True)
class RuleSuggestion:
    """One proposed privacy rule with its justification."""

    rule: Rule
    rationale: str
    evidence_segments: int
    confidence: float  # fraction of relevant segments matching the pattern

    def to_json(self) -> dict:
        """JSON form of the suggestion (what the web UI renders)."""
        from repro.rules.parser import rule_to_json

        return {
            "Rule": rule_to_json(self.rule),
            "Rationale": self.rationale,
            "Evidence": self.evidence_segments,
            "Confidence": round(self.confidence, 3),
        }


def _already_restricted(rules: Iterable[Rule], category: str, context_label: Optional[str]) -> bool:
    """Is there a rule restricting ``category`` (optionally scoped to a
    context label)?  Used to avoid re-suggesting what the owner did."""
    for rule in rules:
        restricts = (
            rule.action.is_deny
            or (
                rule.action.is_abstraction
                and rule.action.abstraction.get(category) is not None
            )
        )
        if not restricts:
            continue
        if context_label is None or context_label in rule.contexts or not rule.contexts:
            return True
    return False


def _co_occurrence_suggestions(segments, rules, min_support, min_confidence):
    # (category, activity) -> [co-occur count, activity count]
    counts: dict = {}
    activity_totals: dict = {}
    for segment in segments:
        activity = segment.context.get("Activity")
        if activity is None:
            continue
        activity_totals[activity] = activity_totals.get(activity, 0) + 1
        for category, sensitive_value in _SENSITIVE:
            if segment.context.get(category) == sensitive_value:
                key = (category, activity)
                counts[key] = counts.get(key, 0) + 1
    suggestions = []
    for (category, activity), count in sorted(counts.items()):
        total = activity_totals.get(activity, 0)
        if count < min_support or total == 0:
            continue
        confidence = count / total
        if confidence < min_confidence:
            continue
        label = _ACTIVITY_CONDITION_LABEL.get(activity)
        if label is None:
            continue
        if _already_restricted(rules, category, label):
            continue
        rule = Rule(
            contexts=(label,),
            action=abstraction(**{category: "NotShare"}),
            note=f"recommended: frequent {category.lower()} while {activity.lower()}",
        )
        suggestions.append(
            RuleSuggestion(
                rule=rule,
                rationale=(
                    f"{category} was '{_dict(_SENSITIVE)[category]}' in {count} of "
                    f"{total} segments while {activity.lower()} "
                    f"({confidence:.0%}); consider not sharing {category} "
                    f"while {activity.lower()}."
                ),
                evidence_segments=count,
                confidence=confidence,
            )
        )
    return suggestions


def _dict(pairs):
    return {k: v for k, v in pairs}


def _place_suggestions(segments, rules, places, min_support, min_confidence):
    # (category, place label) -> count; totals per place.
    counts: dict = {}
    place_totals: dict = {}
    for segment in segments:
        if segment.location is None:
            continue
        for label, place in places.items():
            if not place.contains(segment.location):
                continue
            place_totals[label] = place_totals.get(label, 0) + 1
            for category, sensitive_value in _SENSITIVE:
                if segment.context.get(category) == sensitive_value:
                    key = (category, label)
                    counts[key] = counts.get(key, 0) + 1
    suggestions = []
    for (category, label), count in sorted(counts.items()):
        total = place_totals.get(label, 0)
        if count < min_support or total == 0:
            continue
        confidence = count / total
        if confidence < min_confidence:
            continue
        if _already_restricted(rules, category, None):
            continue
        rule = Rule(
            location_labels=(label,),
            action=abstraction(**{category: "NotShare"}),
            note=f"recommended: {category.lower()} episodes at {label}",
        )
        suggestions.append(
            RuleSuggestion(
                rule=rule,
                rationale=(
                    f"{count} of {total} segments at '{label}' show "
                    f"{category.lower()} ({confidence:.0%}); consider not "
                    f"sharing {category} there."
                ),
                evidence_segments=count,
                confidence=confidence,
            )
        )
    return suggestions


def _broad_allow_suggestions(segments, rules):
    """Flag unconditional allows when high-leakage channels are stored."""
    broad_allows = [
        r for r in rules if r.action.is_allow and r.is_unconditional()
    ]
    if not broad_allows:
        return []
    stored_channels: set = set()
    for segment in segments:
        stored_channels.update(segment.channels)
    suggestions = []
    if {"GpsLat", "GpsLon"} & stored_channels and not _has_location_abstraction(rules):
        consumers = broad_allows[0].consumers
        suggestions.append(
            RuleSuggestion(
                rule=Rule(
                    consumers=consumers,
                    action=abstraction(Location="zipcode"),
                    note="recommended: coarsen shared location",
                ),
                rationale=(
                    "raw GPS coordinates are shared under an unconditional "
                    "allow; zipcode-level location usually preserves study "
                    "utility (exposure, mobility) at lower risk."
                ),
                evidence_segments=sum(
                    1 for s in segments if {"GpsLat", "GpsLon"} & set(s.channels)
                ),
                confidence=1.0,
            )
        )
    night = _night_home_fraction(segments)
    if night and night[1] >= 0.05:
        count, _fraction = night
        suggestions.append(
            RuleSuggestion(
                rule=Rule(
                    time=TimeCondition(
                        repeated=(
                            RepeatedTime.weekly(list(WEEKDAY_NAMES), "11:00pm", "6:00am"),
                        )
                    ),
                    action=abstraction(Time="day"),
                    note="recommended: coarsen night-time timestamps",
                ),
                rationale=(
                    f"{count} night-time segments are shared with full "
                    "millisecond timestamps; day-level timestamps hide sleep "
                    "patterns."
                ),
                evidence_segments=count,
                confidence=1.0,
            )
        )
    return suggestions


def _has_location_abstraction(rules) -> bool:
    sharing = EffectiveSharing()
    for rule in rules:
        if rule.action.is_abstraction:
            sharing.apply(rule.action.abstraction)
    return not sharing.location_is_raw()


def _night_home_fraction(segments):
    from repro.util.timeutil import minutes_since_midnight

    night = total = 0
    for segment in segments:
        total += 1
        minute = minutes_since_midnight(segment.start_ms)
        if minute >= 23 * 60 or minute < 6 * 60:
            night += 1
    if total == 0:
        return None
    return night, night / total


def suggest_rules(
    segments,
    rules,
    places: Mapping,
    *,
    min_support: int = 5,
    min_confidence: float = 0.25,
) -> list:
    """Analyze stored data against current rules; return suggestions.

    Args:
        segments: the owner's raw wave segments (with context annotations).
        rules: the owner's current privacy rules.
        places: the owner's labeled places.
        min_support: minimum matching segments before a pattern is flagged.
        min_confidence: minimum fraction of the relevant segment population.

    Returns a list of :class:`RuleSuggestion`, strongest confidence first.
    """
    suggestions: list = []
    suggestions += _co_occurrence_suggestions(segments, rules, min_support, min_confidence)
    suggestions += _place_suggestions(segments, rules, dict(places), min_support, min_confidence)
    suggestions += _broad_allow_suggestions(segments, rules)
    # Deduplicate by rule id, keep the strongest.
    by_id: dict = {}
    for suggestion in suggestions:
        existing = by_id.get(suggestion.rule.rule_id)
        if existing is None or suggestion.confidence > existing.confidence:
            by_id[suggestion.rule.rule_id] = suggestion
    return sorted(by_id.values(), key=lambda s: -s.confidence)
