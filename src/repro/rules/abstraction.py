"""Abstraction-level algebra (Table 1b).

When several abstraction rules match the same data, the *coarsest* level
per aspect wins — sharing at a finer level than any matching rule allows
would violate that rule.  :class:`EffectiveSharing` accumulates levels
aspect-by-aspect, starting from the finest (raw) levels that a plain Allow
action implies, and answers the questions the engine asks:

* which context categories are still shared raw (drives the dependency
  closure);
* what label, if any, to emit for a category ("Bike" → "Moving" at the
  Move/NotMove level);
* what to do to location and timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import RuleError
from repro.rules.model import LOCATION_ASPECT, LOCATION_LEVELS, TIME_ASPECT, TIME_LEVELS
from repro.sensors.contexts import CONTEXTS

_MOVING_MODES = frozenset(("Walk", "Run", "Bike", "Drive"))


def coarsen_context_label(category: str, fine_label: str, level: str) -> Optional[str]:
    """Render a category's ground/inferred label at an abstraction level.

    Returns None when the level is ``NotShare`` (the category is omitted
    from the release).  Raw levels and the fine-label level both emit the
    fine label: raw sharing reveals at least as much as the label does.
    """
    spec = CONTEXTS.get(category)
    if spec is None:
        raise RuleError(f"unknown context category: {category!r}")
    idx = spec.level_index(level)  # validates the level
    if level == "NotShare":
        return None
    if category == "Activity" and level == "MoveNotMove":
        return "Moving" if fine_label in _MOVING_MODES else "NotMoving"
    del idx
    return fine_label


@dataclass
class EffectiveSharing:
    """Accumulated per-aspect sharing levels for one (consumer, data) pair.

    Starts at the finest level of every ladder — the paper's plain Allow
    semantics ("when allowed, raw sensor data are shared") — and only moves
    coarser as abstraction rules are folded in.
    """

    location_level: str = LOCATION_LEVELS[0]  # "coordinates"
    time_level: str = TIME_LEVELS[0]  # "milliseconds"
    context_levels: dict = field(
        default_factory=lambda: {
            name: spec.abstraction_levels[0] for name, spec in CONTEXTS.items()
        }
    )

    def apply(self, abstraction: dict) -> None:
        """Fold one abstraction action in, keeping the coarsest levels."""
        for aspect, level in abstraction.items():
            if aspect == LOCATION_ASPECT:
                self.location_level = _coarsest(LOCATION_LEVELS, self.location_level, level)
            elif aspect == TIME_ASPECT:
                self.time_level = _coarsest(TIME_LEVELS, self.time_level, level)
            else:
                spec = CONTEXTS.get(aspect)
                if spec is None:
                    raise RuleError(f"unknown abstraction aspect: {aspect!r}")
                self.context_levels[aspect] = spec.coarsest(
                    self.context_levels[aspect], level
                )

    def raw_contexts(self) -> frozenset:
        """Categories still shared at their raw (finest) ladder level."""
        return frozenset(
            name
            for name, level in self.context_levels.items()
            if level == CONTEXTS[name].abstraction_levels[0]
        )

    def restricted_contexts(self) -> frozenset:
        """Categories *not* shared raw (feeds the dependency closure)."""
        return frozenset(self.context_levels) - self.raw_contexts()

    def location_is_raw(self) -> bool:
        """True when location leaves the store as raw coordinates."""
        return self.location_level == LOCATION_LEVELS[0]

    def shares_nothing(self) -> bool:
        """True when every aspect is at NotShare — equivalent to deny."""
        return (
            self.location_level == "NotShare"
            and self.time_level == "NotShare"
            and all(level == "NotShare" for level in self.context_levels.values())
        )

    def context_label(self, category: str, fine_label: str) -> Optional[str]:
        """The label to release for a category, or None if withheld."""
        return coarsen_context_label(category, fine_label, self.context_levels[category])


def _coarsest(ladder: tuple, a: str, b: str) -> str:
    try:
        ia, ib = ladder.index(a), ladder.index(b)
    except ValueError as exc:
        raise RuleError(f"level not on ladder {ladder}: {a!r} / {b!r}") from exc
    return ladder[max(ia, ib)]
