"""Persona-driven trace simulator.

Turns a persona's ground-truth timeline into per-channel sensor packets
whose signal statistics are *conditioned on the ground truth*, so that the
context classifiers in :mod:`repro.context` can actually recover the labels:

* Accelerometer magnitude variance and dominant frequency depend on the
  transport mode (Still < Drive < Walk < Bike < Run), following the feature
  set of Reddy et al.'s transportation-mode work the paper cites.
* The ECG channel carries a heart-rate-proxy signal elevated under stress;
  respiration carries a breathing-rate proxy elevated under stress, with a
  distinctive slow/deep signature while smoking (as in the AutoSense/
  FieldStream studies the paper cites).
* Microphone amplitude rises during conversation.
* GPS follows the persona's current place with jitter.

Rates default to laptop-friendly values (see :mod:`repro.sensors.channels`);
``SimulatorConfig.rate_scale`` scales them uniformly when benchmarks want
more or less volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.sensors.channels import CHANNELS, ChannelSpec
from repro.sensors.packets import SensorPacket, packetize
from repro.sensors.personas import ActivityState, Persona
from repro.util.idgen import DeterministicRng

# Per-mode accelerometer model: (noise std m/s^2, dominant freq Hz, amplitude).
_ACCEL_MODEL = {
    "Still": (0.05, 0.0, 0.0),
    "Walk": (0.60, 1.8, 1.2),
    "Run": (1.20, 2.8, 3.0),
    "Bike": (0.80, 1.2, 1.6),
    "Drive": (0.35, 0.3, 0.5),
}

_HR_BASE = 65.0  # bpm proxy carried on the ECG channel
_HR_STRESS_DELTA = 25.0
_HR_ACTIVITY_DELTA = {"Still": 0.0, "Walk": 15.0, "Run": 60.0, "Bike": 40.0, "Drive": 5.0}

_RESP_BASE = 14.0  # breaths/min proxy
_RESP_STRESS_DELTA = 5.0
_RESP_SMOKING_RATE = 8.0  # slow deep puff breathing
_RESP_SMOKING_AMP = 6.0
_RESP_CONVERSATION_STD = 2.5  # irregular breathing while talking

_MIC_QUIET_DB = -60.0
_MIC_CONVERSATION_DB = -22.0
_MIC_DRIVE_DB = -38.0


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs for trace generation.

    Attributes:
        channels: channel names to simulate; default is every registered
            channel except skin temperature (unused by any context).
        rate_scale: multiply every channel's default rate by this factor.
        packet_samples: per-channel packet-size override; None uses the
            channel's hardware packet size.
        attach_ground_truth: carry ground-truth context labels on packets
            (needed for scoring; a real deployment would not have them).
    """

    channels: tuple[str, ...] = (
        "AccelX",
        "AccelY",
        "AccelZ",
        "GpsLat",
        "GpsLon",
        "MicAmplitude",
        "ECG",
        "Respiration",
    )
    rate_scale: float = 1.0
    packet_samples: Optional[dict] = None
    attach_ground_truth: bool = True

    def __post_init__(self) -> None:
        if self.rate_scale <= 0:
            raise ValidationError(f"rate_scale must be positive: {self.rate_scale}")
        unknown = [c for c in self.channels if c not in CHANNELS]
        if unknown:
            raise ValidationError(f"unknown channels in simulator config: {unknown}")

    def interval_ms(self, spec: ChannelSpec) -> int:
        rate = spec.default_rate_hz * self.rate_scale
        return max(1, int(round(1000.0 / rate)))

    def packet_size(self, spec: ChannelSpec) -> int:
        if self.packet_samples and spec.name in self.packet_samples:
            return int(self.packet_samples[spec.name])
        return spec.packet_samples


@dataclass
class SimulatedTrace:
    """Output of one simulation run."""

    persona_name: str
    states: list  # list[ActivityState], ground truth
    packets: dict  # channel name -> list[SensorPacket]

    def all_packets_sorted(self) -> list:
        """Every packet across channels, ordered by start time."""
        merged: list[SensorPacket] = []
        for plist in self.packets.values():
            merged.extend(plist)
        merged.sort(key=lambda p: (p.start_ms, p.channel_name))
        return merged

    def total_samples(self) -> int:
        return sum(len(p.values) for plist in self.packets.values() for p in plist)

    def state_at(self, ts_ms: int):
        """Ground-truth state covering a timestamp, or None."""
        # States are sorted and contiguous per persona timeline.
        lo, hi = 0, len(self.states) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self.states[mid].interval
            if ts_ms < iv.start:
                hi = mid - 1
            elif ts_ms >= iv.end:
                lo = mid + 1
            else:
                return self.states[mid]
        return None


class TraceSimulator:
    """Generates sensor packets for a persona over a span of days."""

    def __init__(self, persona: Persona, config: Optional[SimulatorConfig] = None, seed: int = 0):
        self.persona = persona
        self.config = config or SimulatorConfig()
        self.rng = DeterministicRng(seed).fork(f"trace:{persona.name}")

    def run(self, start_ms: int, days: int = 1) -> SimulatedTrace:
        """Simulate ``days`` days starting at ``start_ms`` (midnight UTC)."""
        states = self.persona.timeline(start_ms, days, self.rng.fork("timeline"))
        packets: dict = {name: [] for name in self.config.channels}
        for state in states:
            for name in self.config.channels:
                packets[name].extend(self._state_packets(name, state))
        return SimulatedTrace(self.persona.name, states, packets)

    # ------------------------------------------------------------------
    # Per-channel signal models
    # ------------------------------------------------------------------

    def _state_packets(self, channel_name: str, state: ActivityState) -> list:
        spec = CHANNELS[channel_name]
        interval_ms = self.config.interval_ms(spec)
        n = state.interval.duration_ms // interval_ms
        if n <= 0:
            return []
        times = state.interval.start + np.arange(n) * interval_ms
        values = self._signal(channel_name, state, times)
        context = state.context_labels() if self.config.attach_ground_truth else {}
        return packetize(
            channel_name,
            int(state.interval.start),
            interval_ms,
            [float(v) for v in values],
            packet_samples=self.config.packet_size(spec),
            location=state.location,
            context=context,
        )

    def _signal(self, channel_name: str, state: ActivityState, times: np.ndarray) -> np.ndarray:
        rng = self.rng.np
        n = len(times)
        t_sec = times / 1000.0
        if channel_name in ("AccelX", "AccelY", "AccelZ"):
            std, freq, amp = _ACCEL_MODEL.get(state.activity, _ACCEL_MODEL["Still"])
            base = 9.81 if channel_name == "AccelZ" else 0.0
            phase = {"AccelX": 0.0, "AccelY": 2.1, "AccelZ": 4.2}[channel_name]
            periodic = amp * np.sin(2 * math.pi * freq * t_sec + phase) if freq > 0 else 0.0
            return base + periodic + rng.normal(0.0, std, n)
        if channel_name == "GpsLat":
            return state.location.lat + rng.normal(0.0, 0.00005, n)
        if channel_name == "GpsLon":
            return state.location.lon + rng.normal(0.0, 0.00005, n)
        if channel_name == "ECG":
            hr = (
                _HR_BASE
                + (_HR_STRESS_DELTA if state.stressed else 0.0)
                + _HR_ACTIVITY_DELTA.get(state.activity, 0.0)
            )
            return hr + rng.normal(0.0, 3.0, n)
        if channel_name == "Respiration":
            if state.smoking:
                rate = _RESP_SMOKING_RATE
                wave = _RESP_SMOKING_AMP * np.sin(2 * math.pi * (rate / 60.0) * t_sec)
                return rate + wave + rng.normal(0.0, 0.8, n)
            rate = _RESP_BASE + (_RESP_STRESS_DELTA if state.stressed else 0.0)
            std = _RESP_CONVERSATION_STD if state.in_conversation else 0.8
            return rate + rng.normal(0.0, std, n)
        if channel_name == "MicAmplitude":
            if state.in_conversation:
                return _MIC_CONVERSATION_DB + rng.normal(0.0, 6.0, n)
            if state.activity == "Drive":
                return _MIC_DRIVE_DB + rng.normal(0.0, 3.0, n)
            return _MIC_QUIET_DB + rng.normal(0.0, 2.0, n)
        if channel_name == "SkinTemp":
            return 33.0 + rng.normal(0.0, 0.2, n)
        raise ValidationError(f"no signal model for channel {channel_name!r}")
