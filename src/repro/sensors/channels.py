"""Sensor channel registry.

A *channel* is a single named stream of scalar samples (Table 1(a)'s
"Sensor Channel Name", e.g. Accelerometer, ECG).  Multi-axis sensors are
modeled as one channel per axis, matching how wave segments store an array
of per-channel tuples (Fig. 5 shows a segment whose tuple format lists the
channels it carries).

Sample rates default to laptop-friendly values; the real hardware rates
(Zephyr BioHarness: 250 Hz ECG, 18 Hz respiration) are recorded on each
spec for reference and can be requested explicitly by simulations that
want hardware-faithful volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnknownChannelError


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of one sensor channel.

    Attributes:
        name: unique channel name used in wave segments, queries, and rules.
        device: which device produces it ("phone" or "chestband").
        unit: engineering unit of the samples.
        default_rate_hz: sampling rate used by the simulator by default.
        hardware_rate_hz: rate of the real sensor, for reference.
        packet_samples: samples per transmission packet, as shipped by the
            device firmware (the paper cites 64 ECG samples per Zephyr
            packet; this drives the wave-segment optimization experiment).
    """

    name: str
    device: str
    unit: str
    default_rate_hz: float
    hardware_rate_hz: float
    packet_samples: int

    @property
    def default_interval_ms(self) -> int:
        return int(round(1000.0 / self.default_rate_hz))


ACCEL_X = ChannelSpec("AccelX", "phone", "m/s^2", 4.0, 30.0, 32)
ACCEL_Y = ChannelSpec("AccelY", "phone", "m/s^2", 4.0, 30.0, 32)
ACCEL_Z = ChannelSpec("AccelZ", "phone", "m/s^2", 4.0, 30.0, 32)
GPS_LAT = ChannelSpec("GpsLat", "phone", "deg", 1.0 / 15.0, 1.0, 4)
GPS_LON = ChannelSpec("GpsLon", "phone", "deg", 1.0 / 15.0, 1.0, 4)
MIC = ChannelSpec("MicAmplitude", "phone", "dBFS", 1.0, 16000.0, 16)
ECG = ChannelSpec("ECG", "chestband", "mV", 8.0, 250.0, 64)
RESPIRATION = ChannelSpec("Respiration", "chestband", "breaths-signal", 4.0, 18.0, 18)
SKIN_TEMP = ChannelSpec("SkinTemp", "chestband", "degC", 1.0 / 30.0, 1.0, 8)

#: All channels keyed by name.
CHANNELS: dict[str, ChannelSpec] = {
    spec.name: spec
    for spec in (
        ACCEL_X,
        ACCEL_Y,
        ACCEL_Z,
        GPS_LAT,
        GPS_LON,
        MIC,
        ECG,
        RESPIRATION,
        SKIN_TEMP,
    )
}

#: Channel groups usable as a shorthand in rules and queries ("Accelerometer"
#: expands to the three axes, "GPS" to lat/lon), mirroring how the paper's
#: Table 1 lists whole sensors rather than axes.
CHANNEL_GROUPS: dict[str, tuple[str, ...]] = {
    "Accelerometer": (ACCEL_X.name, ACCEL_Y.name, ACCEL_Z.name),
    "GPS": (GPS_LAT.name, GPS_LON.name),
    "Microphone": (MIC.name,),
    "ECG": (ECG.name,),
    "Respiration": (RESPIRATION.name,),
    "SkinTemp": (SKIN_TEMP.name,),
}


def channel(name: str) -> ChannelSpec:
    """Look up a channel spec by exact name."""
    try:
        return CHANNELS[name]
    except KeyError:
        raise UnknownChannelError(f"unknown sensor channel: {name!r}") from None


def channel_names() -> tuple[str, ...]:
    """All registered channel names, in registry order."""
    return tuple(CHANNELS)


def expand_channel_group(name: str) -> tuple[str, ...]:
    """Expand a group name ("Accelerometer") or single channel to channels.

    Accepts either a group name from :data:`CHANNEL_GROUPS` or an exact
    channel name; anything else raises :class:`UnknownChannelError`.
    """
    if name in CHANNEL_GROUPS:
        return CHANNEL_GROUPS[name]
    if name in CHANNELS:
        return (name,)
    raise UnknownChannelError(f"unknown sensor channel or group: {name!r}")
