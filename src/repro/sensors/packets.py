"""Sensor packets: the unit of transmission from device firmware.

Real wearables ship samples in small fixed-size packets — the paper notes
the Zephyr chest band transmits 64 ECG samples per packet — and the phone
relays those packets to the remote data store, where the wave-segment
optimizer merges them (Section 5.1, "Wave Segment Optimization").  A packet
is therefore deliberately *small*; the interesting storage behaviour comes
from how the store coalesces many of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import ValidationError
from repro.sensors.channels import channel
from repro.util.geo import LatLon
from repro.util.timeutil import Interval


@dataclass(frozen=True)
class SensorPacket:
    """A burst of uniformly sampled values from one channel.

    Attributes:
        channel_name: which sensor channel produced the samples.
        start_ms: timestamp of the first sample (epoch ms, UTC).
        interval_ms: spacing between consecutive samples.
        values: the samples, oldest first.
        location: device location when the packet was captured, if known.
        context: ground-truth context labels at capture time, keyed by
            category ("Activity" -> "Drive").  Carried only by the
            simulator for scoring; real devices would not have this.
    """

    channel_name: str
    start_ms: int
    interval_ms: int
    values: tuple[float, ...]
    location: Optional[LatLon] = None
    context: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        channel(self.channel_name)  # validates the name
        if not self.values:
            raise ValidationError("sensor packet must contain at least one sample")
        if self.interval_ms <= 0:
            raise ValidationError(f"non-positive sample interval: {self.interval_ms}")

    @property
    def end_ms(self) -> int:
        """Timestamp just past the last sample (half-open convention)."""
        return self.start_ms + len(self.values) * self.interval_ms

    @property
    def interval(self) -> Interval:
        return Interval(self.start_ms, self.end_ms)

    def sample_times(self) -> list[int]:
        return [self.start_ms + i * self.interval_ms for i in range(len(self.values))]

    def to_json(self) -> dict:
        """Wire format used by the phone's upload API."""
        return {
            "Channel": self.channel_name,
            "StartTime": self.start_ms,
            "SamplingInterval": self.interval_ms,
            "Values": list(self.values),
            "Location": self.location.to_json() if self.location else None,
            "Context": dict(self.context),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "SensorPacket":
        from repro.util.jsonutil import require_keys

        require_keys(
            obj, ("Channel", "StartTime", "SamplingInterval", "Values"), where="packet"
        )
        location = obj.get("Location")
        return cls(
            channel_name=str(obj["Channel"]),
            start_ms=int(obj["StartTime"]),
            interval_ms=int(obj["SamplingInterval"]),
            values=tuple(float(v) for v in obj["Values"]),
            location=LatLon.from_json(location) if location else None,
            context=dict(obj.get("Context", {})),
        )

    def follows(self, other: "SensorPacket") -> bool:
        """True when this packet continues ``other`` seamlessly.

        Seamless means: same channel, same sampling interval, and this
        packet's first sample lands exactly one interval after the other's
        last sample.  This is the precondition the wave-segment merge
        optimizer checks (plus location equality, handled at segment level).
        """
        return (
            self.channel_name == other.channel_name
            and self.interval_ms == other.interval_ms
            and self.start_ms == other.end_ms
        )


def packetize(
    channel_name: str,
    start_ms: int,
    interval_ms: int,
    values: Sequence[float],
    *,
    packet_samples: Optional[int] = None,
    location: Optional[LatLon] = None,
    context: Optional[dict] = None,
) -> list[SensorPacket]:
    """Split a sample run into firmware-sized packets.

    ``packet_samples`` defaults to the channel's hardware packet size.
    """
    if packet_samples is None:
        packet_samples = channel(channel_name).packet_samples
    if packet_samples <= 0:
        raise ValidationError(f"packet_samples must be positive: {packet_samples}")
    packets = []
    for offset in range(0, len(values), packet_samples):
        chunk = tuple(values[offset : offset + packet_samples])
        packets.append(
            SensorPacket(
                channel_name=channel_name,
                start_ms=start_ms + offset * interval_ms,
                interval_ms=interval_ms,
                values=chunk,
                location=location,
                context=dict(context or {}),
            )
        )
    return packets
