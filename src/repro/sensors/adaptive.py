"""Adaptive (change-driven) sampling: non-uniform wave segments.

The paper's wave-segment format supports "sampling schemes such as
adaptive [Jain & Chang], compressive [Candes et al.], and episodic" by
carrying per-sample timestamps inside the value blob.  This module
implements the adaptive case: a zero-order-hold downsampler that keeps a
sample only when the signal moved more than ``epsilon`` since the last
kept sample (with a heartbeat bound on silence), producing exactly the
non-uniform segments the format exists for.

The dual guarantee: reconstruction by zero-order hold is within
``epsilon`` of the original at every original sample instant, while slow
channels (skin temperature, resting heart rate) compress by an order of
magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datastore.wavesegment import TIME_CHANNEL, WaveSegment
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class AdaptivePolicy:
    """Downsampling knobs.

    Attributes:
        epsilon: keep a sample when it differs from the last kept one by
            more than this (absolute units of the channel).
        max_gap_ms: always keep a sample once this much time passed since
            the last kept one, so a flat signal still proves liveness.
    """

    epsilon: float
    max_gap_ms: int = 60_000

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative: {self.epsilon}")
        if self.max_gap_ms <= 0:
            raise ValidationError(f"max_gap_ms must be positive: {self.max_gap_ms}")


def adaptive_downsample(
    times: np.ndarray, values: np.ndarray, policy: AdaptivePolicy
) -> tuple:
    """Select the kept (times, values) from one uniform channel run.

    The first and last samples are always kept, so the span is preserved.
    """
    times = np.asarray(times, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ValidationError(
            f"times and values must align: {times.shape} vs {values.shape}"
        )
    if len(times) == 0:
        return times, values
    keep = [0]
    last_value = values[0]
    last_time = times[0]
    for i in range(1, len(times)):
        if (
            abs(values[i] - last_value) > policy.epsilon
            or times[i] - last_time >= policy.max_gap_ms
        ):
            keep.append(i)
            last_value = values[i]
            last_time = times[i]
    if keep[-1] != len(times) - 1:
        keep.append(len(times) - 1)
    idx = np.asarray(keep)
    return times[idx], values[idx]


def compress_segment(segment: WaveSegment, policy: AdaptivePolicy) -> WaveSegment:
    """Adaptive-compress a uniform single-channel segment.

    Returns a non-uniform segment whose blob carries a ``Time`` column.
    Multi-channel segments must be compressed per channel (each channel
    keeps different instants), so they are rejected here.
    """
    if not segment.is_uniform:
        raise ValidationError("segment is already non-uniform")
    if len(segment.channels) != 1:
        raise ValidationError(
            "adaptive compression operates on single-channel segments; "
            "select_channels() first"
        )
    channel = segment.channels[0]
    times, values = adaptive_downsample(
        segment.sample_times(), segment.channel_values(channel), policy
    )
    blob = np.column_stack([times.astype(np.float64), values])
    return WaveSegment(
        contributor=segment.contributor,
        channels=(TIME_CHANNEL, channel),
        start_ms=int(times[0]),
        interval_ms=None,
        values=blob,
        location=segment.location,
        context=dict(segment.context),
    )


def reconstruct(segment: WaveSegment, at_times: np.ndarray) -> np.ndarray:
    """Zero-order-hold reconstruction of a compressed channel.

    ``at_times`` before the first kept sample get the first kept value.
    """
    if segment.is_uniform:
        raise ValidationError("reconstruct() expects a non-uniform segment")
    data_channels = [c for c in segment.channels if c != TIME_CHANNEL]
    if len(data_channels) != 1:
        raise ValidationError("reconstruct() expects exactly one data channel")
    times = segment.sample_times()
    values = segment.channel_values(data_channels[0])
    at_times = np.asarray(at_times, dtype=np.int64)
    idx = np.searchsorted(times, at_times, side="right") - 1
    idx = np.clip(idx, 0, len(values) - 1)
    return values[idx]


def compression_report(original: WaveSegment, compressed: WaveSegment) -> dict:
    """Size and fidelity metrics for one compression."""
    channel = [c for c in compressed.channels if c != TIME_CHANNEL][0]
    recon = reconstruct(compressed, original.sample_times())
    err = np.abs(recon - original.channel_values(channel))
    return {
        "original_samples": original.n_samples,
        "kept_samples": compressed.n_samples,
        "ratio": original.n_samples / max(1, compressed.n_samples),
        "max_abs_error": float(err.max()) if len(err) else 0.0,
        "original_bytes": original.storage_bytes(),
        "compressed_bytes": compressed.storage_bytes(),
    }
