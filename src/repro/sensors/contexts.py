"""Context registry: inferable behavioral states and their abstractions.

Table 1 of the paper names the contexts available from sensors — Moving,
Not Moving, Still, Walk, Run, Bike, Drive, Stress, Conversation, Smoke —
and, in part (b), an *abstraction ladder* per context category: a data
consumer can receive the raw source sensor data, a fine-grained label, a
coarse binary label, or nothing.

We model four context **categories** (Activity, Stress, Smoking,
Conversation).  Each category declares:

* which sensor channels it is inferable from (the edges of the
  sensor/context dependency graph in :mod:`repro.rules.dependency`);
* its label vocabulary;
* its abstraction ladder, finest first.

Rule *conditions* reference individual labels ("don't share while I am
Driving"); rule *abstraction actions* reference a category and a ladder
level ("share Activity at the Move/NotMove level").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UnknownContextError
from repro.sensors.channels import (
    ACCEL_X,
    ACCEL_Y,
    ACCEL_Z,
    ECG,
    GPS_LAT,
    GPS_LON,
    MIC,
    RESPIRATION,
)

#: Fine-grained activity labels (transportation modes), Table 1(b).
TRANSPORT_MODES = ("Still", "Walk", "Run", "Bike", "Drive")

#: Coarse activity labels.
ACTIVITY_LEVELS = ("NotMoving", "Moving")


@dataclass(frozen=True)
class ContextSpec:
    """One inferable context category.

    Attributes:
        name: category name ("Activity", "Stress", ...).
        source_channels: channels from which the category can be inferred;
            sharing any of them in raw form leaks this context (the
            dependency rule of Section 5.1).
        labels: the fine-grained label vocabulary.
        abstraction_levels: ladder of abstraction level names, finest
            (raw sensor data) first, ending with ``"NotShare"``.
    """

    name: str
    source_channels: tuple[str, ...]
    labels: tuple[str, ...]
    abstraction_levels: tuple[str, ...]

    def level_index(self, level: str) -> int:
        """Position of a level on the ladder; larger is coarser/safer."""
        try:
            return self.abstraction_levels.index(level)
        except ValueError:
            raise UnknownContextError(
                f"context {self.name!r} has no abstraction level {level!r}; "
                f"valid levels: {self.abstraction_levels}"
            ) from None

    def coarsest(self, a: str, b: str) -> str:
        """Of two ladder levels, the coarser (more private) one."""
        return a if self.level_index(a) >= self.level_index(b) else b


ACTIVITY = ContextSpec(
    name="Activity",
    source_channels=(
        ACCEL_X.name,
        ACCEL_Y.name,
        ACCEL_Z.name,
        GPS_LAT.name,
        GPS_LON.name,
    ),
    labels=TRANSPORT_MODES,
    abstraction_levels=("AccelerometerData", "TransportMode", "MoveNotMove", "NotShare"),
)

STRESS = ContextSpec(
    name="Stress",
    source_channels=(ECG.name, RESPIRATION.name),
    labels=("Stressed", "NotStressed"),
    abstraction_levels=("EcgRespirationData", "StressedNotStressed", "NotShare"),
)

SMOKING = ContextSpec(
    name="Smoking",
    source_channels=(RESPIRATION.name,),
    labels=("Smoking", "NotSmoking"),
    abstraction_levels=("RespirationData", "SmokingNotSmoking", "NotShare"),
)

CONVERSATION = ContextSpec(
    name="Conversation",
    source_channels=(MIC.name, RESPIRATION.name),
    labels=("Conversation", "NotConversation"),
    abstraction_levels=("MicRespirationData", "ConversationNotConversation", "NotShare"),
)

#: Context categories keyed by name.
CONTEXTS: dict[str, ContextSpec] = {
    spec.name: spec for spec in (ACTIVITY, STRESS, SMOKING, CONVERSATION)
}

#: Every context label a rule condition may name (Table 1(a), Context row),
#: mapped to ``(category, predicate)``.  The predicate receives the
#: category's current label and decides whether the condition holds.
_LABEL_PREDICATES: dict[str, tuple[str, tuple[str, ...]]] = {
    # Activity labels.
    "Still": ("Activity", ("Still",)),
    "Walk": ("Activity", ("Walk",)),
    "Run": ("Activity", ("Run",)),
    "Bike": ("Activity", ("Bike",)),
    "Drive": ("Activity", ("Drive",)),
    "Moving": ("Activity", ("Walk", "Run", "Bike", "Drive")),
    "NotMoving": ("Activity", ("Still",)),
    # Stress labels ("Stress" is the paper's Table 1 spelling).
    "Stress": ("Stress", ("Stressed",)),
    "Stressed": ("Stress", ("Stressed",)),
    "NotStressed": ("Stress", ("NotStressed",)),
    # Conversation.
    "Conversation": ("Conversation", ("Conversation",)),
    "NotConversation": ("Conversation", ("NotConversation",)),
    # Smoking ("Smoke" is the paper's Table 1 spelling).
    "Smoke": ("Smoking", ("Smoking",)),
    "Smoking": ("Smoking", ("Smoking",)),
    "NotSmoking": ("Smoking", ("NotSmoking",)),
}

#: Public list of condition labels, for Table 1 regeneration.
CONTEXT_NAMES = tuple(_LABEL_PREDICATES)


def context(name: str) -> ContextSpec:
    """Look up a context category by name."""
    try:
        return CONTEXTS[name]
    except KeyError:
        raise UnknownContextError(f"unknown context category: {name!r}") from None


def label_category(label: str) -> str:
    """Category a condition label belongs to ("Drive" -> "Activity")."""
    try:
        return _LABEL_PREDICATES[label][0]
    except KeyError:
        raise UnknownContextError(f"unknown context label: {label!r}") from None


def label_matches(label: str, category_value: str) -> bool:
    """Does a category's current value satisfy a condition label?

    ``label_matches("Moving", "Bike")`` is True; the condition label
    "Moving" holds whenever the Activity category's value is any moving
    transport mode.
    """
    category, accepted = _LABEL_PREDICATES.get(label, (None, ()))
    if category is None:
        raise UnknownContextError(f"unknown context label: {label!r}")
    return category_value in accepted


def categories_for_channel(channel_name: str) -> tuple[str, ...]:
    """Context categories inferable from a given raw channel.

    This is the reverse edge set of the dependency graph: raw respiration
    data leaks Stress, Smoking, and Conversation.
    """
    return tuple(
        spec.name for spec in CONTEXTS.values() if channel_name in spec.source_channels
    )
