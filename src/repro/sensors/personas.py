"""Personas: ground-truth daily-life timelines for the trace simulator.

A persona is a synthetic data contributor with named places (home, work,
...), a weekday/weekend schedule, and behavioral propensities (how often
they are stressed, whether they smoke, how much of the work day is spent in
conversation).  The persona compiles to a timeline of
:class:`ActivityState` spans — the *ground truth* against which context
inference accuracy and privacy-rule enforcement are scored.

This replaces the paper's human study participants (see DESIGN.md,
Substitutions): the rule engine and collection gate consume only the
sensor streams and inferred labels, so any generator that produces
plausibly correlated streams with known truth exercises the same paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ValidationError
from repro.util.geo import BoundingBox, LabeledPlace, LatLon
from repro.util.idgen import DeterministicRng
from repro.util.timeutil import Interval, WEEKDAY_NAMES

_MS_PER_MIN = 60_000
_MS_PER_DAY = 86_400_000


@dataclass(frozen=True)
class ActivityState:
    """Ground truth over one span of time.

    Attributes:
        interval: the span this state covers (epoch ms, half-open).
        place: label of the persona's current place, or None in transit.
        location: representative coordinate during the span.
        activity: transport mode label ("Still", "Walk", ..., "Drive").
        stressed / in_conversation / smoking: behavioral booleans.
    """

    interval: Interval
    place: Optional[str]
    location: LatLon
    activity: str
    stressed: bool = False
    in_conversation: bool = False
    smoking: bool = False

    def context_labels(self) -> dict:
        """Ground-truth labels keyed by context category name."""
        return {
            "Activity": self.activity,
            "Stress": "Stressed" if self.stressed else "NotStressed",
            "Conversation": "Conversation" if self.in_conversation else "NotConversation",
            "Smoking": "Smoking" if self.smoking else "NotSmoking",
        }


@dataclass(frozen=True)
class ScheduleEntry:
    """One block of a daily schedule, in minutes since midnight."""

    start_minute: int
    end_minute: int
    place: Optional[str]  # None means in transit
    activity: str
    conversation_prob: float = 0.0
    stress_prob: float = 0.0
    smoking_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.start_minute < self.end_minute <= 1440:
            raise ValidationError(
                f"schedule entry minutes out of order: {self.start_minute}..{self.end_minute}"
            )


@dataclass(frozen=True)
class DaySchedule:
    """A full day of schedule entries covering [0, 1440) minutes."""

    entries: tuple[ScheduleEntry, ...]

    def __post_init__(self) -> None:
        cursor = 0
        for entry in self.entries:
            if entry.start_minute != cursor:
                raise ValidationError(
                    f"schedule gap or overlap at minute {entry.start_minute} (expected {cursor})"
                )
            cursor = entry.end_minute
        if cursor != 1440:
            raise ValidationError(f"schedule ends at minute {cursor}, expected 1440")


@dataclass
class Persona:
    """A synthetic contributor: places, schedules, and behaviour knobs."""

    name: str
    places: dict  # label -> LabeledPlace
    weekday: DaySchedule
    weekend: DaySchedule
    smoker: bool = False
    #: Granularity of ground-truth state spans, minutes.  Behaviour booleans
    #: are re-drawn each span, so shorter spans mean choppier behaviour.
    state_minutes: int = 15

    def place(self, label: str) -> LabeledPlace:
        try:
            return self.places[label]
        except KeyError:
            raise ValidationError(f"persona {self.name!r} has no place {label!r}") from None

    def schedule_for(self, weekday_name: str) -> DaySchedule:
        return self.weekday if weekday_name in WEEKDAY_NAMES[:5] else self.weekend

    def timeline(self, start_ms: int, days: int, rng: DeterministicRng) -> list[ActivityState]:
        """Compile the persona into ground-truth states over ``days`` days.

        ``start_ms`` should be midnight UTC of the first day; states are
        emitted in ``state_minutes`` slices so behavioral booleans vary
        within a schedule block.
        """
        from repro.util.timeutil import day_of_week  # local to avoid cycle at import

        if days <= 0:
            raise ValidationError(f"days must be positive: {days}")
        states: list[ActivityState] = []
        slice_ms = self.state_minutes * _MS_PER_MIN
        for day in range(days):
            day_start = start_ms + day * _MS_PER_DAY
            schedule = self.schedule_for(day_of_week(day_start))
            for entry in schedule.entries:
                entry_start = day_start + entry.start_minute * _MS_PER_MIN
                entry_end = day_start + entry.end_minute * _MS_PER_MIN
                location = self._entry_location(entry, rng)
                ts = entry_start
                while ts < entry_end:
                    span_end = min(ts + slice_ms, entry_end)
                    smoking = (
                        self.smoker
                        and entry.smoking_prob > 0
                        and rng.random() < entry.smoking_prob
                    )
                    states.append(
                        ActivityState(
                            interval=Interval(ts, span_end),
                            place=entry.place,
                            location=location,
                            activity=entry.activity,
                            stressed=rng.random() < entry.stress_prob,
                            in_conversation=rng.random() < entry.conversation_prob,
                            smoking=smoking,
                        )
                    )
                    ts = span_end
        return states

    def _entry_location(self, entry: ScheduleEntry, rng: DeterministicRng) -> LatLon:
        if entry.place is not None:
            box = self.place(entry.place).region.bounding_box()
            lat = float(rng.uniform(box.south, box.north))
            lon = float(rng.uniform(box.west, box.east))
            return LatLon(lat, lon)
        # In transit: a point between home and work if both exist, else a
        # jittered city-center point.
        anchors = [p.region.bounding_box().center() for p in self.places.values()]
        if len(anchors) >= 2:
            t = rng.random()
            a, b = anchors[0], anchors[1]
            return LatLon(a.lat + t * (b.lat - a.lat), a.lon + t * (b.lon - a.lon))
        base = anchors[0] if anchors else LatLon(34.07, -118.44)
        return LatLon(base.lat + float(rng.normal(0, 0.01)), base.lon + float(rng.normal(0, 0.01)))


def default_places(seed_offset: float = 0.0) -> dict:
    """Places around Los Angeles (the authors' campus) for stock personas.

    ``seed_offset`` shifts the whole map slightly so distinct contributors
    have distinct home coordinates.
    """

    def box(lat: float, lon: float, half: float = 0.004) -> BoundingBox:
        return BoundingBox(lat - half, lon - half, lat + half, lon + half)

    d = seed_offset
    return {
        "home": LabeledPlace("home", box(34.030 + d, -118.470 + d)),
        "work": LabeledPlace("work", box(34.052 + d, -118.243 + d)),
        "UCLA": LabeledPlace("UCLA", box(34.0689 + d, -118.4452 + d)),
        "gym": LabeledPlace("gym", box(34.041 + d, -118.400 + d)),
    }


def _standard_weekday(
    commute_mode: str,
    stress_prob: float,
    conversation_prob: float,
    smoking_prob: float,
) -> DaySchedule:
    return DaySchedule(
        entries=(
            ScheduleEntry(0, 420, "home", "Still", 0.02, 0.02, 0.0),  # sleep
            ScheduleEntry(420, 480, "home", "Still", 0.30, 0.05, smoking_prob),  # morning
            ScheduleEntry(480, 540, None, commute_mode, 0.05, stress_prob + 0.2, 0.0),
            ScheduleEntry(540, 720, "work", "Still", conversation_prob, stress_prob, 0.0),
            ScheduleEntry(720, 780, "work", "Walk", 0.60, 0.05, smoking_prob),  # lunch
            ScheduleEntry(780, 1020, "work", "Still", conversation_prob, stress_prob, 0.0),
            ScheduleEntry(1020, 1080, None, commute_mode, 0.05, stress_prob + 0.2, 0.0),
            ScheduleEntry(1080, 1140, "gym", "Run", 0.05, 0.02, 0.0),
            ScheduleEntry(1140, 1440, "home", "Still", 0.25, 0.05, smoking_prob),
        )
    )


def _standard_weekend(smoking_prob: float) -> DaySchedule:
    return DaySchedule(
        entries=(
            ScheduleEntry(0, 540, "home", "Still", 0.02, 0.01, 0.0),
            ScheduleEntry(540, 660, "home", "Still", 0.40, 0.03, smoking_prob),
            ScheduleEntry(660, 780, None, "Bike", 0.05, 0.02, 0.0),
            ScheduleEntry(780, 960, "UCLA", "Walk", 0.50, 0.05, smoking_prob),
            ScheduleEntry(960, 1020, None, "Bike", 0.05, 0.02, 0.0),
            ScheduleEntry(1020, 1440, "home", "Still", 0.30, 0.03, smoking_prob),
        )
    )


def make_persona(
    name: str,
    *,
    commute_mode: str = "Drive",
    stress_prob: float = 0.25,
    conversation_prob: float = 0.35,
    smoker: bool = False,
    seed_offset: float = 0.0,
    state_minutes: int = 15,
) -> Persona:
    """Build a stock persona with the standard office-worker shape.

    The defaults mirror the paper's Section 6 narrative: drive commutes
    (with elevated stress while driving), conversations at work, optional
    smoking breaks.
    """
    smoking_prob = 0.3 if smoker else 0.0
    return Persona(
        name=name,
        places=default_places(seed_offset),
        weekday=_standard_weekday(commute_mode, stress_prob, conversation_prob, smoking_prob),
        weekend=_standard_weekend(smoking_prob),
        smoker=smoker,
        state_minutes=state_minutes,
    )
