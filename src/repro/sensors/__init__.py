"""Synthetic sensor substrate.

The paper's data contributors carry a smartphone (GPS, WiFi, accelerometer,
microphone) and a Zephyr BioHarness BT chest band (ECG, respiration, skin
temperature).  We have no such hardware, so this package simulates it: a
persona-driven daily-life generator produces per-channel sample streams,
packetized the way real devices ship them (e.g. 64 ECG samples per packet),
together with ground-truth context labels used to score inference and to
verify rule enforcement end to end.
"""

from repro.sensors.channels import (
    ACCEL_X,
    ACCEL_Y,
    ACCEL_Z,
    CHANNELS,
    ECG,
    GPS_LAT,
    GPS_LON,
    MIC,
    RESPIRATION,
    SKIN_TEMP,
    ChannelSpec,
    channel,
    channel_names,
)
from repro.sensors.contexts import (
    ACTIVITY_LEVELS,
    CONTEXT_NAMES,
    CONTEXTS,
    ContextSpec,
    TRANSPORT_MODES,
    context,
)
from repro.sensors.packets import SensorPacket
from repro.sensors.personas import (
    ActivityState,
    DaySchedule,
    Persona,
    ScheduleEntry,
    default_places,
    make_persona,
)
from repro.sensors.simulator import SimulatorConfig, TraceSimulator

__all__ = [
    "ACCEL_X",
    "ACCEL_Y",
    "ACCEL_Z",
    "CHANNELS",
    "ECG",
    "GPS_LAT",
    "GPS_LON",
    "MIC",
    "RESPIRATION",
    "SKIN_TEMP",
    "ChannelSpec",
    "channel",
    "channel_names",
    "ACTIVITY_LEVELS",
    "CONTEXT_NAMES",
    "CONTEXTS",
    "ContextSpec",
    "TRANSPORT_MODES",
    "context",
    "SensorPacket",
    "ActivityState",
    "DaySchedule",
    "Persona",
    "ScheduleEntry",
    "default_places",
    "make_persona",
    "SimulatorConfig",
    "TraceSimulator",
]
