"""The data contributor's handle: rules, places, uploads, own-data view."""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.collection.phone import PhoneConfig, SmartphoneAgent
from repro.datastore.query import DataQuery
from repro.datastore.wavesegment import WaveSegment
from repro.net.client import HttpClient
from repro.rules.model import Rule
from repro.rules.parser import rule_from_json, rule_to_json, rules_from_json, rules_to_json
from repro.util.geo import LabeledPlace


class Contributor:
    """Client-side API for one data contributor.

    Every method is a real round trip to the contributor's remote data
    store over the simulated network — nothing here touches server state
    directly, so examples and benchmarks exercise the same path a
    deployment would.
    """

    def __init__(self, name: str, store_host: str, client: HttpClient):
        self.name = name
        self.store_host = store_host
        self.client = client

    def _url(self, path: str) -> str:
        return f"https://{self.store_host}{path}"

    # ------------------------------------------------------------------
    # Places
    # ------------------------------------------------------------------

    def set_places(self, places: Iterable[LabeledPlace]) -> int:
        body = self.client.post(
            self._url("/api/places/set"),
            {"Contributor": self.name, "Places": [p.to_json() for p in places]},
        )
        return int(body["Count"])

    def places(self) -> dict:
        body = self.client.post(self._url("/api/places/list"), {"Contributor": self.name})
        out = {}
        for obj in body.get("Places", []):
            place = LabeledPlace.from_json(obj)
            out[place.label] = place
        return out

    # ------------------------------------------------------------------
    # Privacy rules
    # ------------------------------------------------------------------

    def add_rule(self, rule: Union[Rule, dict]) -> str:
        """Add one rule (a :class:`Rule` or its Fig. 4 JSON form)."""
        if isinstance(rule, dict):
            rule = rule_from_json(rule)
        body = self.client.post(
            self._url("/api/rules/add"),
            {"Contributor": self.name, "Rule": rule_to_json(rule)},
        )
        return str(body["RuleId"])

    def remove_rule(self, rule_id: str) -> None:
        self.client.post(
            self._url("/api/rules/remove"), {"Contributor": self.name, "RuleId": rule_id}
        )

    def replace_rules(self, rules: Iterable[Rule]) -> int:
        body = self.client.post(
            self._url("/api/rules/replace"),
            {"Contributor": self.name, "Rules": rules_to_json(list(rules))},
        )
        return int(body["Version"])

    def rules(self) -> list:
        body = self.client.post(self._url("/api/rules/list"), {"Contributor": self.name})
        return rules_from_json(body.get("Rules", []))

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------

    def phone(self, config: Optional[PhoneConfig] = None) -> SmartphoneAgent:
        """A smartphone agent bound to this contributor's store."""
        agent = SmartphoneAgent(self.name, self.store_host, self.client, config)
        agent.download_rules()
        return agent

    def upload_segments(self, segments: Iterable[WaveSegment]) -> int:
        body = self.client.post(
            self._url("/api/upload"),
            {"Contributor": self.name, "Segments": [s.to_json() for s in segments]},
        )
        return int(body["Finalized"])

    def flush(self) -> int:
        body = self.client.post(self._url("/api/flush"), {"Contributor": self.name})
        return int(body["Finalized"])

    def view_data(self, query: Optional[DataQuery] = None) -> list:
        """The owner's unfiltered view of their own data (web-UI path)."""
        body = self.client.post(
            self._url("/api/query"),
            {"Contributor": self.name, "Query": (query or DataQuery()).to_json()},
        )
        return [WaveSegment.from_json(s) for s in body.get("Segments", [])]

    def delete_data(self, query: Optional[DataQuery] = None) -> int:
        """Permanently delete stored data matching the query (owner only)."""
        body = self.client.post(
            self._url("/api/delete"),
            {"Contributor": self.name, "Query": (query or DataQuery()).to_json()},
        )
        return int(body["Deleted"])

    def stats(self) -> dict:
        return self.client.post(self._url("/api/stats"), {"Contributor": self.name})

    # ------------------------------------------------------------------
    # Audit trail
    # ------------------------------------------------------------------

    def audit_trail(self, limit: Optional[int] = None) -> list:
        """Who accessed this contributor's data, and what they received."""
        from repro.server.audit import AuditRecord

        body: dict = {"Contributor": self.name}
        if limit is not None:
            body["Limit"] = limit
        response = self.client.post(self._url("/api/audit/list"), body)
        return [AuditRecord.from_json(r) for r in response.get("Records", [])]

    def audit_summary(self) -> dict:
        """Per-consumer aggregate: accesses, samples taken, raw reads."""
        body = self.client.post(
            self._url("/api/audit/summary"), {"Contributor": self.name}
        )
        return dict(body.get("Summary", {}))

    def suggest_rules(self, **kwargs) -> list:
        """Run the privacy-rule recommender over this contributor's data.

        Fetches the owner's raw data and current rules and returns
        :class:`~repro.rules.recommend.RuleSuggestion` items — the "Alice
        reviews her data and tightens her rules" loop of Section 6,
        automated.
        """
        from repro.rules.recommend import suggest_rules

        segments = self.view_data()
        return suggest_rules(segments, self.rules(), self.places(), **kwargs)
