"""The data consumer's handle: discovery via the broker, data via stores.

Mirrors the Bob walkthrough of Section 6: list contributors, add them to
the account (the broker auto-registers the consumer at each store and
escrows the API keys), search for contributors with suitable privacy
rules, save the resulting list, and download data *directly from each
remote data store* with the escrowed keys — the broker stays out of the
data path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.broker.search import SearchCriteria
from repro.datastore.query import DataQuery
from repro.net.client import HttpClient
from repro.rules.engine import ReleasedSegment


class Consumer:
    """Client-side API for one data consumer."""

    def __init__(self, name: str, broker_host: str, client: HttpClient):
        self.name = name
        self.broker_host = broker_host
        self.client = client
        self._key_ring: dict = {}
        self._hosts: dict = {}  # contributor -> store host (route cache)
        #: Highest broker routing epoch this client has observed.  Purely
        #: informational on the client: correctness comes from the fence
        #: (a stale cached host answers 409 and we re-resolve), not from
        #: comparing epochs — the epoch lets tests and operators assert
        #: convergence ("the client caught up to the cutover's epoch").
        self._route_epoch = 0

    def _obs(self):
        network = getattr(self.client, "network", None)
        obs = getattr(network, "obs", None)
        return obs if obs is not None and obs.enabled else None

    def _broker(self, path: str) -> str:
        return f"https://{self.broker_host}{path}"

    # ------------------------------------------------------------------
    # Discovery and account management (broker)
    # ------------------------------------------------------------------

    def list_contributors(self) -> list:
        body = self.client.post(self._broker("/api/contributors/list"))
        for entry in body.get("Contributors", []):
            self._hosts[entry["Contributor"]] = entry["Host"]
        return body.get("Contributors", [])

    def add_contributors(self, names: Iterable[str]) -> dict:
        """Add contributors to this account (auto-registration + escrow)."""
        body = self.client.post(
            self._broker("/api/contributors/add"), {"Contributors": list(names)}
        )
        added = body.get("Added", {})
        self._hosts.update(added)
        self.refresh_keys()
        return added

    def refresh_keys(self) -> dict:
        body = self.client.post(self._broker("/api/keys"))
        self._key_ring = dict(body.get("Keys", {}))
        return dict(self._key_ring)

    def search(self, criteria: Union[SearchCriteria, dict]) -> list:
        """Contributor names whose rules satisfy the criteria."""
        if isinstance(criteria, SearchCriteria):
            criteria = criteria.to_json()
        body = self.client.post(self._broker("/api/search"), {"Criteria": dict(criteria)})
        matches = body.get("Matches", [])
        for entry in matches:
            self._hosts[entry["Contributor"]] = entry["Host"]
        return [entry["Contributor"] for entry in matches]

    def save_list(self, name: str, contributors: Iterable[str]) -> None:
        self.client.post(
            self._broker("/api/lists/save"),
            {"Name": name, "Contributors": list(contributors)},
        )

    def get_list(self, name: str) -> list:
        body = self.client.post(self._broker("/api/lists/get"), {"Name": name})
        return list(body.get("Contributors", []))

    def create_study(self, study: str) -> None:
        self.client.post(self._broker("/api/studies/create"), {"Study": study})

    def join_study(self, study: str) -> None:
        self.client.post(self._broker("/api/studies/join"), {"Study": study})

    # ------------------------------------------------------------------
    # Data access (direct to stores)
    # ------------------------------------------------------------------

    def resolve(self, contributor: str, *, force: bool = False):
        """The contributor's store host: route-cache hit or one lookup.

        A hit costs the broker nothing — which is the point of the
        directory design: at fleet scale the broker answers one ``/api/
        route`` per (consumer, contributor) pair per topology change, not
        one per query.  ``force=True`` drops the cached route first (the
        fenced-retry path).  Returns ``None`` for unknown contributors.
        """
        from repro.exceptions import NotFoundError

        if force:
            self._hosts.pop(contributor, None)
        host = self._hosts.get(contributor)
        obs = self._obs()
        if host is not None:
            if obs is not None:
                obs.metrics.counter("route_cache_hits_total").inc()
            return host
        try:
            body = self.client.post(
                self._broker("/api/route"), {"Contributor": contributor}
            )
        except NotFoundError:
            return None
        host = str(body["Host"])
        self._hosts[contributor] = host
        self._route_epoch = max(
            self._route_epoch, int(body.get("RoutingEpoch", 0))
        )
        if obs is not None:
            obs.metrics.counter("route_cache_misses_total").inc()
        return host

    def _store_client(self, contributor: str) -> tuple:
        host = self.resolve(contributor)
        key = self._key_ring.get(host) if host else None
        if key is None:
            self.refresh_keys()
            key = self._key_ring.get(host) if host else None
        return host, key

    def _post_store(self, contributor: str, path: str, body: dict) -> dict:
        """POST to a contributor's store, re-resolving once on failover.

        A store that answers :class:`~repro.exceptions.NotPrimaryError`
        was demoted — or the contributor migrated to another shard and
        the old shard fenced the request.  An unreachable host may be a
        dead primary mid-failover.  Either way the cure is the same:
        forget the cached route, re-resolve at the broker directory,
        refresh the key ring, and retry exactly once against the new
        host.  One fenced retry, then the client has converged.
        """
        from repro.exceptions import AuthorizationError, NotPrimaryError, TransportError

        host, key = self._store_client(contributor)
        if host is None or key is None:
            raise AuthorizationError(
                f"{self.name!r} has no access to {contributor!r}; "
                "call add_contributors first"
            )
        try:
            return self.client.with_key(key).post(f"https://{host}{path}", dict(body))
        except (NotPrimaryError, TransportError):
            self.resolve(contributor, force=True)
            self.refresh_keys()
            new_host, new_key = self._store_client(contributor)
            if new_host is None or new_key is None or (new_host, new_key) == (host, key):
                raise  # nothing changed: the original failure stands
            return self.client.with_key(new_key).post(
                f"https://{new_host}{path}", dict(body)
            )

    def fetch(
        self, contributor: str, query: Optional[DataQuery] = None
    ) -> list:
        """Download a contributor's data directly from their store.

        Returns :class:`ReleasedSegment` items — whatever the owner's
        privacy rules let through for this consumer.
        """
        body = self._post_store(
            contributor,
            "/api/query",
            {"Contributor": contributor, "Query": (query or DataQuery()).to_json()},
        )
        return [ReleasedSegment.from_json(r) for r in body.get("Released", [])]

    def fetch_aggregate(
        self,
        contributor: str,
        spec,
        query: Optional[DataQuery] = None,
    ) -> list:
        """Windowed aggregates over whatever the rules release.

        ``spec`` is an :class:`~repro.datastore.aggregate.AggregateSpec`;
        returns :class:`~repro.datastore.aggregate.AggregateRow` items.
        """
        from repro.datastore.aggregate import AggregateRow

        body = self._post_store(
            contributor,
            "/api/aggregate",
            {
                "Contributor": contributor,
                "Query": (query or DataQuery()).to_json(),
                "Aggregate": spec.to_json(),
            },
        )
        return [AggregateRow.from_json(r) for r in body.get("Rows", [])]

    def fetch_via_broker(
        self, contributor: str, query: Optional[DataQuery] = None
    ) -> list:
        """The web-UI path: data proxied through the broker (C2 contrast)."""
        body = self.client.post(
            self._broker("/api/data"),
            {"Contributor": contributor, "Query": (query or DataQuery()).to_json()},
        )
        return [ReleasedSegment.from_json(r) for r in body.get("Released", [])]
