"""System assembly: broker + remote data stores on one simulated network."""

from __future__ import annotations

from typing import Optional

from repro.core.consumer import Consumer
from repro.core.contributor import Contributor
from repro.datastore.optimizer import MergePolicy
from repro.exceptions import ConflictError
from repro.net.client import HttpClient
from repro.net.faults import FaultPlan, SimClock
from repro.net.resilience import RetryPolicy
from repro.net.transport import Network
from repro.obs import Observability
from repro.server.broker_service import BrokerService
from repro.server.datastore_service import DataStoreService


class SensorSafeSystem:
    """A complete in-process SensorSafe deployment (paper Fig. 1).

    Typical use::

        system = SensorSafeSystem()
        alice = system.add_contributor("alice")          # personal store
        lab = system.create_store("lab-store", institution="UCLA")
        bob_subj = system.add_contributor("subject-1", store=lab)
        bob = system.add_consumer("bob")
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        eager_sync: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        telemetry: bool = True,
        overload: str = "observe",
    ):
        self.seed = seed
        self.eager_sync = eager_sync
        #: admission-control mode for every host this system creates:
        #: ``"off"`` (no gate), ``"observe"`` (account, never shed — the
        #: default, so functional tests see no behavior change), or
        #: ``"enforce"`` (shed with typed 503/504s under overload).
        self.overload = overload
        self.clock = SimClock()
        #: ``telemetry=False`` builds the deployment with observability
        #: disabled end to end — no metrics, no spans, no SLO tracking,
        #: no fleet scrapes.  Benchmark C15 uses this as the baseline to
        #: price full-fleet telemetry.
        obs = None if telemetry else Observability(clock=self.clock, enabled=False)
        self.network = Network(clock=self.clock, fault_plan=fault_plan, obs=obs)
        #: deployment-wide observability hub (metrics registry + tracer);
        #: every host, client, and phone on this network shares it.
        self.obs = self.network.obs
        #: default retry policy handed to every client this system creates;
        #: on a fault-free network it never fires, so resilience is free.
        self.retry = retry if retry is not None else RetryPolicy()
        self.broker = BrokerService(self.network, "broker", seed=seed, overload=overload)
        self.stores: dict[str, DataStoreService] = {}
        self.contributors: dict[str, Contributor] = {}
        self.consumers: dict[str, Consumer] = {}

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or remove) a fault-injection plan on the network."""
        self.network.install_faults(plan)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def create_store(
        self,
        host: str,
        *,
        institution: str = "self-hosted",
        merge_policy: Optional[MergePolicy] = None,
        directory: Optional[str] = None,
        enforce_closure: bool = True,
        durable: bool = False,
        wal_sync: str = "group",
    ) -> DataStoreService:
        """Create a remote data store and pair it with the broker.

        A store can be a contributor's personal machine or an
        institutional server hosting many study participants (the IRB
        topology of Section 1).
        """
        if host in self.stores:
            raise ConflictError(f"store host already exists: {host!r}")
        store = DataStoreService(
            host,
            self.network,
            institution=institution,
            merge_policy=merge_policy,
            directory=directory,
            seed=self.seed,
            enforce_closure=enforce_closure,
            durable=durable,
            wal_sync=wal_sync,
            overload=self.overload,
        )
        self.stores[host] = store
        self.broker.attach_store(store, eager_sync=self.eager_sync)
        return store

    def create_shard_fleet(
        self,
        n_shards: int,
        *,
        prefix: str = "shard",
        institution: str = "self-hosted",
        directory: Optional[str] = None,
        durable: bool = False,
        wal_sync: str = "group",
    ) -> list:
        """Create N store shards and put them on the broker's hash ring.

        Once a fleet exists, :meth:`add_contributor` places new
        contributors on shards by consistent hashing instead of creating
        one personal store per contributor — the smart-city topology the
        C14 benchmark measures.  With ``durable=True`` each shard gets a
        WAL under ``directory/<host>`` (required for WAL-based shard
        migration; non-durable shards migrate by full snapshot).
        Returns the shard services, hosts ``{prefix}-1 … -N``.
        """
        import os

        shards = []
        for i in range(1, max(1, int(n_shards)) + 1):
            host = f"{prefix}-{i}"
            shards.append(
                self.create_store(
                    host,
                    institution=institution,
                    directory=(
                        os.path.join(directory, host) if directory else None
                    ),
                    durable=durable and directory is not None,
                    wal_sync=wal_sync,
                )
            )
            self.broker.directory.add_shard(host)
        return shards

    def split_shard(
        self,
        source_host: str,
        dest_host: str,
        *,
        institution: str = "self-hosted",
        directory: Optional[str] = None,
        durable: bool = False,
        wal_sync: str = "group",
    ) -> dict:
        """Split one shard online: create/ring-add ``dest_host``, migrate.

        The destination joins the ring first (new registrations land
        there immediately); the migration then moves exactly the
        contributors whose ring placement is the new shard — bootstrap,
        WAL catch-up, fence, drain, fail-closed verify, cutover (see
        :mod:`repro.broker.rebalance`).  Returns the migration report.
        """
        import os

        if dest_host not in self.stores:
            self.create_store(
                dest_host,
                institution=institution,
                directory=(
                    os.path.join(directory, dest_host) if directory else None
                ),
                durable=durable and directory is not None,
                wal_sync=wal_sync,
            )
        return self.broker.rebalancer.split_shard(source_host, dest_host)

    def create_replicated_store(
        self,
        host: str,
        *,
        directory: str,
        n_replicas: int = 1,
        institution: str = "self-hosted",
        mode: str = "async",
        min_acks: int = 1,
        wal_sync: str = "group",
        storage_faults=None,
        merge_policy: Optional[MergePolicy] = None,
    ) -> DataStoreService:
        """Create a durable primary plus WAL-shipping replicas.

        Members live in per-host subdirectories of ``directory``; replica
        hosts are ``{host}-r1 … -rN``.  The broker pairs with every
        member, wires shipping links, and owns failure detection —
        :meth:`BrokerService.failover` heartbeats promote the
        most-caught-up replica when the primary dies.  Returns the
        primary service; the set is ``system.broker.failover.sets[host]``.
        """
        import os

        if host in self.stores:
            raise ConflictError(f"store host already exists: {host!r}")
        primary = DataStoreService(
            host,
            self.network,
            institution=institution,
            merge_policy=merge_policy,
            directory=os.path.join(directory, host),
            seed=self.seed,
            durable=True,
            wal_sync=wal_sync,
            storage_faults=storage_faults,
            overload=self.overload,
        )
        self.stores[host] = primary
        self.broker.attach_store(primary, eager_sync=self.eager_sync)
        replicas = []
        for i in range(1, max(0, int(n_replicas)) + 1):
            replica_host = f"{host}-r{i}"
            replica = DataStoreService(
                replica_host,
                self.network,
                institution=institution,
                merge_policy=merge_policy,
                directory=os.path.join(directory, replica_host),
                seed=self.seed,
                durable=True,
                wal_sync=wal_sync,
                overload=self.overload,
            )
            self.stores[replica_host] = replica
            replicas.append(replica)
        self.broker.attach_replica_set(
            primary, replicas, name=host, mode=mode, min_acks=min_acks
        )
        return primary

    def add_contributor(
        self,
        name: str,
        *,
        store: Optional[DataStoreService] = None,
        password: str = "pw",
    ) -> Contributor:
        """Register a data contributor; creates a personal store if needed.

        Registration at the store automatically registers the contributor
        on the broker too, as the paper prescribes.  When a shard fleet
        exists (:meth:`create_shard_fleet`) and no explicit store is
        given, the contributor is *placed* on a shard by consistent
        hashing instead of getting a personal store.
        """
        if name in self.contributors:
            raise ConflictError(f"contributor already exists: {name!r}")
        if store is None:
            placed = self.broker.directory.place(name)
            store = self.stores.get(placed) if placed else None
        if store is None:
            store = self.create_store(f"{name}-store")
        api_key = store.register_contributor(name, password)
        self.broker.register_contributor(name, store.host, store.institution)
        client = HttpClient(
            self.network, name=f"{name}-phone", api_key=api_key, retry=self.retry
        )
        contributor = Contributor(name, store.host, client)
        self.contributors[name] = contributor
        return contributor

    def repoint_contributor(self, name: str, password: str = "pw") -> Contributor:
        """Re-home a contributor's phone after a broker-driven failover.

        Consumers re-resolve transparently (the broker escrows their
        keys), but a contributor authenticates with a key issued by their
        own store — which just died.  The recovery step the runbook
        prescribes: ask the broker's directory for the current host and,
        if it moved, register there for a fresh key.  Replicated rules
        and data survive untouched (:meth:`RuleStore.register` is a
        no-op for a known contributor); only the account/key material,
        which is deliberately never replicated, is re-issued.
        """
        from repro.auth.accounts import ROLE_CONTRIBUTOR

        contributor = self.contributors[name]
        record = self.broker.registry.get(name)
        if record.host == contributor.store_host:
            return contributor  # directory agrees: nothing to do
        body = HttpClient(self.network, name=f"{name}-phone").post(
            f"https://{record.host}/api/register",
            {"Username": name, "Role": ROLE_CONTRIBUTOR, "Password": password},
        )
        contributor.store_host = record.host
        contributor.client = HttpClient(
            self.network,
            name=f"{name}-phone",
            api_key=str(body["ApiKey"]),
            retry=self.retry,
        )
        return contributor

    def add_consumer(self, name: str, password: str = "pw") -> Consumer:
        """Register a data consumer at the broker."""
        if name in self.consumers:
            raise ConflictError(f"consumer already exists: {name!r}")
        api_key = self.broker.register_consumer(name, password)
        client = HttpClient(
            self.network, name=f"{name}-app", api_key=api_key, retry=self.retry
        )
        consumer = Consumer(name, self.broker.host, client)
        self.consumers[name] = consumer
        return consumer

    # ------------------------------------------------------------------
    # Introspection used by benchmarks
    # ------------------------------------------------------------------

    def traffic(self) -> dict:
        """Per-host traffic snapshot: {host: HostMetrics}."""
        return dict(self.network.metrics)

    def pull_sync(self) -> int:
        """Trigger one broker pull-sync round (lazy mode)."""
        return self.broker.pull_profiles()
