"""Public high-level API: wire a whole SensorSafe deployment in-process.

:class:`~repro.core.system.SensorSafeSystem` builds the Fig. 1 topology —
a broker plus any number of remote data stores on a simulated network —
and hands out :class:`~repro.core.contributor.Contributor` and
:class:`~repro.core.consumer.Consumer` handles whose methods mirror what
the paper's users do: define privacy rules, upload sensor data (optionally
through the rule-aware phone agent), search for contributors, and fetch
rule-filtered data directly from the stores.
"""

from repro.core.system import SensorSafeSystem
from repro.core.contributor import Contributor
from repro.core.consumer import Consumer

__all__ = ["SensorSafeSystem", "Contributor", "Consumer"]
