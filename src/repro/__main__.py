"""Command-line entry point.

``python -m repro`` runs the self-check demo: builds a miniature
deployment, runs the paper's headline flow, and prints a short report,
exiting non-zero if any invariant fails — a post-install smoke test.

``python -m repro conformance [...]`` runs the privacy-conformance
harness (see :mod:`repro.conformance.runner`) instead.

``python -m repro obs report [...]`` runs the observability demo: an
end-to-end scenario whose metrics snapshot and query trace tree are
printed (and optionally dumped as JSON); see :mod:`repro.obs.report`.

``python -m repro obs fleet [--drill ...]`` runs a replicated deployment,
scrapes every host through the broker's fleet aggregator, and renders the
cluster-wide telemetry report: per-host health, fleet totals, privacy-SLO
burn status, and the slow-query log; see :mod:`repro.obs.fleet`.

``python -m repro recover --dir DIR --host HOST [...]`` recovers a
store's durable state offline — replays the write-ahead log over the
last good snapshot, reports torn/quarantined/fail-closed outcomes, and
can write a fresh checkpoint; see :mod:`repro.storage.cli`.

``python -m repro replicas [--drill ...]`` builds a replicated store
set, prints its topology and shipping status, and (with ``--drill``)
kills the primary to verify broker-driven failover, zero committed-write
loss, and fail-closed rules fencing; see :mod:`repro.broker.replicas_cli`.
"""

from __future__ import annotations

import sys

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    abstraction,
    make_persona,
    timestamp_ms,
)

MONDAY = timestamp_ms(2011, 2, 7)


def main() -> int:
    print("SensorSafe self-check")
    print("=====================")
    system = SensorSafeSystem(seed=1)
    alice = system.add_contributor("alice")
    persona = make_persona("alice", commute_mode="Drive", stress_prob=0.4)
    alice.set_places(persona.places.values())
    alice.add_rule(Rule(consumers=("bob",), action=ALLOW))
    alice.add_rule(
        Rule(consumers=("bob",), contexts=("Drive",), action=abstraction(Stress="NotShare"))
    )
    trace = TraceSimulator(persona, SimulatorConfig(rate_scale=0.05), seed=1).run(
        MONDAY, days=1
    )
    phone = alice.phone(PhoneConfig(rule_aware=True))
    phone.collect(trace.all_packets_sorted())
    print(f"  uploaded {phone.stats.samples_uploaded:,} samples "
          f"(gate skipped {phone.stats.samples_skipped_gate:,})")

    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    released = bob.fetch(
        "alice", DataQuery(time_range=Interval(MONDAY, MONDAY + 86_400_000))
    )
    print(f"  bob received {len(released)} released pieces")

    failures = []
    drive_windows = {
        item.interval.start // 60_000
        for item in released
        if item.context_labels.get("Activity") == "Drive"
    }
    for item in released:
        if item.interval.start // 60_000 in drive_windows:
            if "Stress" in item.context_labels or "ECG" in item.channels():
                failures.append("stress leaked while driving")
                break
    if not drive_windows:
        failures.append("no driving windows released (simulation problem)")
    broker_bytes = system.traffic()["broker"].total_bytes()
    store_bytes = system.traffic()["alice-store"].total_bytes()
    print(f"  traffic: broker {broker_bytes:,} B, store {store_bytes:,} B")
    if broker_bytes >= store_bytes:
        failures.append("broker carried more traffic than the data store")

    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("  all invariants held — OK")
    return 0


def dispatch(argv: list) -> int:
    if argv and argv[0] == "conformance":
        from repro.conformance.runner import main as conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.report import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "recover":
        from repro.storage.cli import main as recover_main

        return recover_main(argv[1:])
    if argv and argv[0] == "replicas":
        from repro.broker.replicas_cli import main as replicas_main

        return replicas_main(argv[1:])
    if argv:
        print(
            f"unknown subcommand {argv[0]!r}; known: conformance, obs, recover, "
            "replicas",
            file=sys.stderr,
        )
        return 2
    return main()


if __name__ == "__main__":
    sys.exit(dispatch(sys.argv[1:]))
