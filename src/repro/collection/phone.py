"""The smartphone agent: sensing gate, context annotation, batched upload.

The agent processes a contributor's sensor stream in fixed windows:

1. **Sensing gate** (location+time, context-agnostic): a sensor is left
   off for a window when *no* rule could release its data at the current
   location and time under *any* context — evaluated by stripping context
   conditions from the downloaded rules (optimistic), so a channel that is
   shareable only in some context is still temporarily collected.
2. **Context inference** on the temporarily collected window.
3. **Upload gate** (exact): each packet, now annotated with inferred
   context, is evaluated against the owner's real rules for every consumer
   named in them; packets nobody could ever receive are discarded.
4. **Batched upload** of the survivors to the remote data store.

Per-sample energy costs are charged for every *sensed* sample, so the C3
benchmark can report the energy the gate saves alongside the privacy it
buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.context.annotate import ContextAnnotator
from repro.datastore.wavesegment import segment_from_packet
from repro.exceptions import OverloadedError, ServiceError, TransportError
from repro.net.client import HttpClient
from repro.rules.engine import RuleEngine
from repro.rules.model import Rule
from repro.rules.parser import rules_from_json
from repro.sensors.packets import SensorPacket
from repro.util.geo import LabeledPlace

#: Sentinel for "a consumer matched only by wildcard (no-Consumer) rules".
ANYONE = "__anyone__"

#: Relative per-sample sensing energy cost (dimensionless units), loosely
#: ordered by real duty-cycle cost: GPS is expensive, accelerometer cheap.
ENERGY_COST = {
    "GpsLat": 8.0,
    "GpsLon": 8.0,
    "MicAmplitude": 4.0,
    "ECG": 2.0,
    "Respiration": 2.0,
    "AccelX": 1.0,
    "AccelY": 1.0,
    "AccelZ": 1.0,
    "SkinTemp": 0.5,
}


@dataclass
class CollectionStats:
    """Counters for one collection run."""

    samples_available: int = 0
    samples_sensed: int = 0
    samples_skipped_gate: int = 0
    samples_discarded_context: int = 0
    samples_uploaded: int = 0
    energy_units: float = 0.0
    upload_requests: int = 0
    #: upload attempts that failed (the request or its batch was not stored)
    upload_failures: int = 0
    #: packets actually acknowledged by the store
    packets_delivered: int = 0
    #: packets parked in the offline queue by failed uploads (cumulative)
    packets_buffered: int = 0
    #: buffered packets later delivered by a drain or a following upload
    packets_recovered: int = 0
    #: packets dropped on the floor (non-resilient agents only)
    packets_lost: int = 0
    #: uploads deferred because the store asked for backoff (Retry-After)
    upload_backoffs: int = 0


@dataclass(frozen=True)
class PhoneConfig:
    """Agent knobs."""

    rule_aware: bool = False
    window_ms: int = 60_000
    upload_batch_packets: int = 200
    #: Buffer failed uploads in an offline queue and redeliver on recovery
    #: (the paper's "no sensed-and-permitted data is ever lost" property).
    #: When off, a failed batch is counted lost and the agent moves on —
    #: the naive baseline benchmark C7 measures against.
    resilient: bool = True
    #: Hard cap on the offline queue; beyond it the oldest packets are
    #: dropped (and counted lost) so a dead store cannot exhaust the phone.
    offline_queue_packets: int = 50_000


class SmartphoneAgent:
    """One contributor's phone."""

    def __init__(
        self,
        contributor: str,
        store_host: str,
        client: HttpClient,
        config: Optional[PhoneConfig] = None,
    ):
        self.contributor = contributor
        self.store_host = store_host
        self.client = client
        self.config = config or PhoneConfig()
        self.annotator = ContextAnnotator(window_ms=self.config.window_ms)
        self.rules: tuple = ()
        self.places: dict = {}
        self.stats = CollectionStats()
        self._offline_queue: list[SensorPacket] = []
        # Observability: queue depth as a gauge, overflow drops as a
        # counter, both labelled by contributor (a name, never a value).
        # A clientless agent (offline unit tests) has no hub to report to.
        obs = client.network.obs if client is not None else None
        self.obs = obs if obs is not None and obs.enabled else None
        if self.obs is not None:
            self.obs.metrics.gauge(
                "phone_offline_queue_depth",
                callback=lambda: len(self._offline_queue),
                contributor=contributor,
            )
            self._c_dropped = self.obs.metrics.counter(
                "phone_packets_dropped_total", contributor=contributor
            )
        else:
            self._c_dropped = None
        self._flush_pending = False
        #: Simulated-clock timestamp before which the agent will not send:
        #: set from the store's Retry-After hint on a typed 503 shed, so a
        #: fleet of phones drains an overloaded store instead of hammering it.
        self._backoff_until_ms = 0
        self._exact_engine: Optional[RuleEngine] = None
        self._optimistic_engine: Optional[RuleEngine] = None
        self._consumers: tuple = ()

    # ------------------------------------------------------------------
    # Rule download and local engines
    # ------------------------------------------------------------------

    def download_rules(self) -> int:
        """Fetch the owner's rules and places from their data store."""
        body = self.client.post(
            f"https://{self.store_host}/api/rules/download",
            {"Contributor": self.contributor},
        )
        rules = tuple(rules_from_json(body.get("Rules", [])))
        places = {
            place.label: place
            for place in (LabeledPlace.from_json(p) for p in body.get("Places", []))
        }
        self.set_rules(rules, places)
        return int(body.get("Version", 0))

    def set_rules(self, rules: Iterable[Rule], places: dict) -> None:
        """Install rules directly (offline path used by tests/benchmarks)."""
        self.rules = tuple(rules)
        self.places = dict(places)
        self._exact_engine = RuleEngine(self.rules, self.places)
        # Optimistic view: assume whatever context is most favorable to
        # sharing.  Context conditions on Allow rules are treated as
        # satisfied (strip them); context-conditioned Deny/Abstraction
        # rules might not fire, so they are dropped entirely.
        stripped = []
        for rule in self.rules:
            if not rule.contexts:
                stripped.append(rule)
            elif rule.action.is_allow:
                stripped.append(replace_contexts(rule))
        self._optimistic_engine = RuleEngine(stripped, self.places)
        names: set = set()
        wildcard = False
        for rule in self.rules:
            if rule.consumers:
                names.update(rule.consumers)
            else:
                wildcard = True
        if wildcard:
            names.add(ANYONE)
        self._consumers = tuple(sorted(names))

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    #: Neutral context values used for optimistic sensing probes, so that
    #: label-level releases (e.g. "share Stress as a label") are visible
    #: to the gate even before any context has been inferred.
    _NEUTRAL_CONTEXT = {
        "Activity": "Still",
        "Stress": "NotStressed",
        "Conversation": "NotConversation",
        "Smoking": "NotSmoking",
    }

    def sensing_allowed(self, packet: SensorPacket) -> bool:
        """Could this packet's channel ever be shared at this place/time?

        Context-optimistic: context conditions on Allow rules are assumed
        satisfied and context-conditioned restrictions assumed inactive,
        so "share only while driving" keeps the sensor on (the phone must
        collect to find out whether the owner is driving).
        """
        if not self.config.rule_aware:
            return True
        probe = segment_from_packet(self.contributor, packet)
        probe = probe.with_context(dict(self._NEUTRAL_CONTEXT))
        engine = self._optimistic_engine
        assert engine is not None, "rules not downloaded"
        return any(
            self._channel_released(packet.channel_name, engine.evaluate_segment(c, probe))
            for c in self._consumers
        )

    def should_upload(self, packet: SensorPacket) -> bool:
        """Exact gate: would any consumer receive this packet's data —
        raw, or as a context label inferable from this channel?"""
        if not self.config.rule_aware:
            return True
        segment = segment_from_packet(self.contributor, packet)
        engine = self._exact_engine
        assert engine is not None, "rules not downloaded"
        return any(
            self._channel_released(packet.channel_name, engine.evaluate_segment(c, segment))
            for c in self._consumers
        )

    @staticmethod
    def _channel_released(channel_name: str, released) -> bool:
        """Did anything derived from this channel leave the rule engine?

        A release is attributable to the channel when it carries the raw
        channel itself, or a context label of a category inferable from
        the channel.  Location metadata alone is not a reason to keep a
        motion or physiological sensor running.
        """
        from repro.sensors.contexts import categories_for_channel

        relevant = set(categories_for_channel(channel_name))
        for item in released:
            if item.segment is not None:
                return True
            if relevant & set(item.context_labels):
                return True
        return False

    # ------------------------------------------------------------------
    # The collection loop
    # ------------------------------------------------------------------

    def collect(self, packets: Iterable[SensorPacket], *, upload: bool = True) -> list:
        """Run the full pipeline over a packet stream.

        Returns the packets that passed both gates (annotated with
        *inferred* context); uploads them in batches unless
        ``upload=False`` (used by benchmarks that only measure the gate).
        """
        windows: dict[int, list] = {}
        for packet in packets:
            self.stats.samples_available += len(packet.values)
            windows.setdefault(packet.start_ms // self.config.window_ms, []).append(packet)

        kept: list[SensorPacket] = []
        for key in sorted(windows):
            group = windows[key]
            sensed = []
            for packet in group:
                if self.sensing_allowed(packet):
                    sensed.append(packet)
                    self.stats.samples_sensed += len(packet.values)
                    self.stats.energy_units += ENERGY_COST.get(
                        packet.channel_name, 1.0
                    ) * len(packet.values)
                else:
                    self.stats.samples_skipped_gate += len(packet.values)
            if not sensed:
                continue
            labels = self.annotator.infer_window(sensed)
            for packet in sensed:
                annotated = SensorPacket(
                    channel_name=packet.channel_name,
                    start_ms=packet.start_ms,
                    interval_ms=packet.interval_ms,
                    values=packet.values,
                    location=packet.location,
                    context=dict(labels),
                )
                if self.should_upload(annotated):
                    kept.append(annotated)
                    self.stats.samples_uploaded += len(annotated.values)
                else:
                    self.stats.samples_discarded_context += len(annotated.values)

        if upload:
            self.upload(kept)
        return kept

    def upload(self, packets: list) -> None:
        """Ship packets to the remote data store in batches.

        Resilient mode (the default): a batch that fails — store down,
        request dropped, 5xx — is parked in the offline queue together
        with everything behind it (order preserved), and redelivered by
        the next :meth:`upload` or an explicit :meth:`drain_offline` once
        the store recovers.  Non-resilient agents count the failed batch
        as lost and move on.
        """
        if self._backing_off():
            # The store asked for breathing room; park everything rather
            # than contributing to the very overload it is shedding.
            if self.config.resilient:
                self.stats.upload_backoffs += 1
                self._buffer(list(packets))
            else:
                self.stats.packets_lost += len(packets)
            return
        recovering = len(self._offline_queue)
        pending = self._offline_queue + list(packets)
        self._offline_queue = []
        batch = self.config.upload_batch_packets
        delivered = 0
        for offset in range(0, len(pending), batch):
            chunk = pending[offset : offset + batch]
            if not self._post_chunk(chunk):
                remainder = pending[offset:]
                if self.config.resilient:
                    self._buffer(remainder)
                else:
                    self.stats.packets_lost += len(remainder)
                break
            delivered += len(chunk)
        self.stats.packets_recovered += min(delivered, recovering)
        if delivered or (pending and not self.config.resilient):
            self._flush_pending = True
        self._try_flush()

    #: Backoff applied when an overloaded store supplies no Retry-After hint.
    _DEFAULT_BACKOFF_MS = 1_000

    def _backing_off(self) -> bool:
        """Is the agent inside a Retry-After window from the store?"""
        if self._backoff_until_ms <= 0 or self.client is None:
            return False
        return self.client.network.clock.now_ms() < self._backoff_until_ms

    def _post_chunk(self, chunk: list) -> bool:
        try:
            self.client.post(
                f"https://{self.store_host}/api/upload_packets",
                {
                    "Contributor": self.contributor,
                    "Packets": [p.to_json() for p in chunk],
                },
            )
        except OverloadedError as exc:
            # A typed shed is an explicit answer: honor its Retry-After
            # hint and stop sending until the window passes.
            self.stats.upload_failures += 1
            hint = max(exc.retry_after_ms, self._DEFAULT_BACKOFF_MS)
            self._backoff_until_ms = self.client.network.clock.now_ms() + hint
            return False
        except (TransportError, ServiceError):
            self.stats.upload_failures += 1
            return False
        self.stats.upload_requests += 1
        self.stats.packets_delivered += len(chunk)
        return True

    def _buffer(self, packets: list) -> None:
        self.stats.packets_buffered += len(packets)
        self._offline_queue.extend(packets)
        overflow = len(self._offline_queue) - self.config.offline_queue_packets
        if overflow > 0:
            del self._offline_queue[:overflow]
            self.stats.packets_lost += overflow
            if self._c_dropped is not None:
                self._c_dropped.inc(overflow)

    def _try_flush(self) -> None:
        if not self._flush_pending:
            return
        try:
            self.client.post(
                f"https://{self.store_host}/api/flush", {"Contributor": self.contributor}
            )
        except (TransportError, ServiceError):
            if not self.config.resilient:
                self._flush_pending = False  # naive agent gives up
            return
        self._flush_pending = False

    @property
    def offline_backlog(self) -> int:
        """Packets currently parked in the offline queue."""
        return len(self._offline_queue)

    def drain_offline(self, *, max_rounds: int = 8, round_delay_ms: int = 5_000) -> int:
        """Redeliver the offline queue; returns packets still queued.

        Each round is one :meth:`upload` pass over the backlog; the
        client's retry policy supplies backoff between attempts, and
        ``round_delay_ms`` passes on the simulated clock between rounds
        (the phone waking up periodically) so an open circuit breaker can
        reach its half-open probe.  Stops early once the queue is empty
        and any pending flush went through.
        """
        for round_no in range(max_rounds):
            if not self._offline_queue and not self._flush_pending:
                break
            if round_no:
                delay = round_delay_ms
                if self._backoff_until_ms > 0:
                    clock = self.client.network.clock
                    delay = max(delay, self._backoff_until_ms - clock.now_ms())
                self.client.network.clock.sleep(delay)
            self.upload([])
        return len(self._offline_queue)


def replace_contexts(rule: Rule) -> Rule:
    """A copy of ``rule`` with its context condition removed.

    Used to build the optimistic sensing-gate engine: whether the context
    condition would hold is unknowable before collecting, so the gate
    assumes it might.
    """
    return Rule(
        consumers=rule.consumers,
        location_labels=rule.location_labels,
        location_regions=rule.location_regions,
        time=rule.time,
        sensors=rule.sensors,
        contexts=(),
        action=rule.action,
        note=rule.note,
    )
