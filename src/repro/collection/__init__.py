"""Privacy rule-aware data collection (paper Section 5.3).

The contributor's smartphone downloads its owner's privacy rules and
decides, window by window, whether to collect at all: "When there are no
data to be shared at the current location and time, sensors will be
disabled.  In case of a context condition, sensor data are first
temporarily collected on a smartphone to infer current context.  If there
are no data to be shared in the current context, the data will be
discarded."

The feature is optional (:attr:`PhoneConfig.rule_aware`) because data not
collected is unrecoverable if the owner later relaxes their rules — the
paper's stated caveat, which benchmark C3 quantifies.
"""

from repro.collection.phone import CollectionStats, PhoneConfig, SmartphoneAgent

__all__ = ["CollectionStats", "PhoneConfig", "SmartphoneAgent"]
