"""Access audit trail for remote data stores.

The Personal Data Vault work the paper builds on pairs fine-grained access
control with a *trace audit* so owners can see who accessed what; the
paper's future-work section promises security mechanisms in the same
spirit.  This module gives every remote data store an append-only audit
log: one record per query-API access, capturing who asked, what they asked
for, and what the rule engine actually let out (including what was
withheld and why).  Owners read their own trail through the audit API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class AuditRecord:
    """One access to one contributor's data."""

    seq: int
    at_ms: int  # logical time: the store's access counter is monotonic
    principal: str
    contributor: str
    query: dict
    raw_access: bool  # owner reading their own data
    segments_scanned: int
    pieces_released: int
    samples_released: int
    labels_released: tuple  # sorted category names that flowed
    withheld: dict  # channel -> reason (aggregated across pieces)
    trace_id: str = ""  # request trace tree this access belongs to

    def to_json(self) -> dict:
        return {
            "Seq": self.seq,
            "At": self.at_ms,
            "Principal": self.principal,
            "Contributor": self.contributor,
            "Query": dict(self.query),
            "RawAccess": self.raw_access,
            "SegmentsScanned": self.segments_scanned,
            "PiecesReleased": self.pieces_released,
            "SamplesReleased": self.samples_released,
            "LabelsReleased": list(self.labels_released),
            "Withheld": dict(self.withheld),
            "TraceId": self.trace_id,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "AuditRecord":
        return cls(
            seq=int(obj["Seq"]),
            at_ms=int(obj["At"]),
            principal=str(obj["Principal"]),
            contributor=str(obj["Contributor"]),
            query=dict(obj.get("Query", {})),
            raw_access=bool(obj.get("RawAccess", False)),
            segments_scanned=int(obj.get("SegmentsScanned", 0)),
            pieces_released=int(obj.get("PiecesReleased", 0)),
            samples_released=int(obj.get("SamplesReleased", 0)),
            labels_released=tuple(obj.get("LabelsReleased", ())),
            withheld=dict(obj.get("Withheld", {})),
            trace_id=str(obj.get("TraceId", "")),  # absent in pre-trace records
        )


class AuditLog:
    """Per-contributor append-only access trail."""

    def __init__(self) -> None:
        self._records: dict[str, list] = {}
        self._seq = itertools.count(1)

    def record_access(
        self,
        *,
        principal: str,
        contributor: str,
        query: dict,
        raw_access: bool,
        segments_scanned: int,
        released: Iterable = (),
        trace_id: str = "",
    ) -> AuditRecord:
        """Log one query-API access; ``released`` are ReleasedSegments."""
        pieces = 0
        samples = 0
        labels: set = set()
        withheld: dict = {}
        for item in released:
            pieces += 1
            samples += item.n_samples
            labels.update(item.context_labels)
            withheld.update(item.withheld)
        seq = next(self._seq)
        record = AuditRecord(
            seq=seq,
            at_ms=seq,  # logical clock; wall time is not simulated
            principal=principal,
            contributor=contributor,
            query=dict(query),
            raw_access=raw_access,
            segments_scanned=segments_scanned,
            pieces_released=pieces,
            samples_released=samples,
            labels_released=tuple(sorted(labels)),
            withheld=withheld,
            trace_id=trace_id,
        )
        self._records.setdefault(contributor, []).append(record)
        return record

    def restore(self, records: Iterable[AuditRecord]) -> int:
        """Re-install persisted records, advancing the sequence counter."""
        count = 0
        max_seq = 0
        for record in records:
            self._records.setdefault(record.contributor, []).append(record)
            max_seq = max(max_seq, record.seq)
            count += 1
        if max_seq:
            self._seq = itertools.count(max_seq + 1)
        return count

    def trail_of(self, contributor: str, *, limit: Optional[int] = None) -> list:
        """The contributor's records, oldest first."""
        records = self._records.get(contributor, [])
        if limit is not None:
            return records[-limit:]
        return list(records)

    def accesses_by(self, contributor: str, principal: str) -> list:
        return [r for r in self._records.get(contributor, []) if r.principal == principal]

    def summary(self, contributor: str) -> dict:
        """Per-consumer aggregate: accesses and samples taken."""
        out: dict = {}
        for record in self._records.get(contributor, []):
            entry = out.setdefault(
                record.principal, {"accesses": 0, "samples": 0, "raw": 0}
            )
            entry["accesses"] += 1
            entry["samples"] += record.samples_released
            entry["raw"] += record.raw_access
        return out
