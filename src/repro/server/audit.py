"""Access audit trail for remote data stores.

The Personal Data Vault work the paper builds on pairs fine-grained access
control with a *trace audit* so owners can see who accessed what; the
paper's future-work section promises security mechanisms in the same
spirit.  This module gives every remote data store an append-only audit
log: one record per query-API access, capturing who asked, what they asked
for, and what the rule engine actually let out (including what was
withheld and why).  Owners read their own trail through the audit API.

Integrity: each record carries a **checksum chain** value — the SHA-256 of
the previous record's chain value plus this record's canonical content.
A trail with records removed (a torn persistence tail, or tampering)
stops chaining at the gap, so :meth:`AuditLog.verify_chain` detects a
shorter, plausible-looking trail instead of trusting it.  Records
persisted before chaining existed verify as "legacy" rather than broken.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from repro.util import jsonutil


@dataclass(frozen=True)
class AuditRecord:
    """One access to one contributor's data."""

    seq: int
    at_ms: int  # logical time: the store's access counter is monotonic
    principal: str
    contributor: str
    query: dict
    raw_access: bool  # owner reading their own data
    segments_scanned: int
    pieces_released: int
    samples_released: int
    labels_released: tuple  # sorted category names that flowed
    withheld: dict  # channel -> reason (aggregated across pieces)
    trace_id: str = ""  # request trace tree this access belongs to
    chain: str = ""  # checksum chain value ("" on pre-chain records)

    def core_json(self) -> dict:
        """The chained content: everything except the chain value itself."""
        return {
            "Seq": self.seq,
            "At": self.at_ms,
            "Principal": self.principal,
            "Contributor": self.contributor,
            "Query": dict(self.query),
            "RawAccess": self.raw_access,
            "SegmentsScanned": self.segments_scanned,
            "PiecesReleased": self.pieces_released,
            "SamplesReleased": self.samples_released,
            "LabelsReleased": list(self.labels_released),
            "Withheld": dict(self.withheld),
            "TraceId": self.trace_id,
        }

    def to_json(self) -> dict:
        out = self.core_json()
        out["Chain"] = self.chain
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "AuditRecord":
        return cls(
            seq=int(obj["Seq"]),
            at_ms=int(obj["At"]),
            principal=str(obj["Principal"]),
            contributor=str(obj["Contributor"]),
            query=dict(obj.get("Query", {})),
            raw_access=bool(obj.get("RawAccess", False)),
            segments_scanned=int(obj.get("SegmentsScanned", 0)),
            pieces_released=int(obj.get("PiecesReleased", 0)),
            samples_released=int(obj.get("SamplesReleased", 0)),
            labels_released=tuple(obj.get("LabelsReleased", ())),
            withheld=dict(obj.get("Withheld", {})),
            trace_id=str(obj.get("TraceId", "")),  # absent in pre-trace records
            chain=str(obj.get("Chain", "")),  # absent in pre-chain records
        )


def chain_value(prev_chain: str, record: AuditRecord) -> str:
    """The chain hash linking ``record`` to its predecessor's chain."""
    material = prev_chain + jsonutil.canonical_dumps(record.core_json())
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class AuditLog:
    """Per-contributor append-only access trail with a checksum chain."""

    def __init__(self) -> None:
        self._records: dict[str, list] = {}
        self._next_seq = 1
        #: Durability hooks fired with each freshly appended record (the
        #: write-ahead log journals the trail through these); restores do
        #: not fire them.
        self._listeners: list[Callable[[AuditRecord], None]] = []

    def on_append(self, listener: Callable[[AuditRecord], None]) -> None:
        self._listeners.append(listener)

    def record_access(
        self,
        *,
        principal: str,
        contributor: str,
        query: dict,
        raw_access: bool,
        segments_scanned: int,
        released: Iterable = (),
        trace_id: str = "",
    ) -> AuditRecord:
        """Log one query-API access; ``released`` are ReleasedSegments."""
        pieces = 0
        samples = 0
        labels: set = set()
        withheld: dict = {}
        for item in released:
            pieces += 1
            samples += item.n_samples
            labels.update(item.context_labels)
            withheld.update(item.withheld)
        seq = self._next_seq
        self._next_seq += 1
        record = AuditRecord(
            seq=seq,
            at_ms=seq,  # logical clock; wall time is not simulated
            principal=principal,
            contributor=contributor,
            query=dict(query),
            raw_access=raw_access,
            segments_scanned=segments_scanned,
            pieces_released=pieces,
            samples_released=samples,
            labels_released=tuple(sorted(labels)),
            withheld=withheld,
            trace_id=trace_id,
        )
        trail = self._records.setdefault(contributor, [])
        prev = trail[-1].chain if trail else ""
        record = replace(record, chain=chain_value(prev, record))
        trail.append(record)
        for listener in self._listeners:
            listener(record)
        return record

    def restore(self, records: Iterable[AuditRecord]) -> int:
        """Re-install persisted records, advancing the sequence counter.

        Idempotent per (contributor, seq): crash recovery replays WAL
        records over a snapshot that may already contain them (a crash
        between snapshot rotation and the manifest commit), and a
        duplicate trail entry would falsely break the checksum chain.

        The counter only ever ratchets upward: recovery calls this once
        for the snapshot trail and then once per replayed WAL record, and
        a replayed *older* record (e.g. after a torn WAL tail cut the
        newest frames) must not regress the counter into seq numbers the
        trail already holds — reused (contributor, seq) keys would make a
        later restore silently drop legitimate records as duplicates.
        """
        count = 0
        max_seq = 0
        for record in records:
            max_seq = max(max_seq, record.seq)
            trail = self._records.setdefault(record.contributor, [])
            if any(existing.seq == record.seq for existing in trail):
                continue
            trail.append(record)
            count += 1
        self._next_seq = max(self._next_seq, max_seq + 1)
        return count

    def verify_chain(self, contributor: str) -> list:
        """Sequence numbers whose chain value does not link to its trail.

        An empty list means the trail is intact end to end.  Records with
        an empty chain (persisted before chaining existed) are treated as
        legacy and skipped — the chain restarts at the next record.
        """
        breaks = []
        prev = ""
        for record in self._records.get(contributor, []):
            if not record.chain:  # legacy record: unverifiable, restart chain
                prev = ""
                continue
            if record.chain != chain_value(prev, record):
                breaks.append(record.seq)
            prev = record.chain
        return breaks

    def contributors(self) -> list:
        return sorted(self._records)

    def trail_of(self, contributor: str, *, limit: Optional[int] = None) -> list:
        """The contributor's records, oldest first."""
        records = self._records.get(contributor, [])
        if limit is not None:
            return records[-limit:]
        return list(records)

    def accesses_by(self, contributor: str, principal: str) -> list:
        return [r for r in self._records.get(contributor, []) if r.principal == principal]

    def summary(self, contributor: str) -> dict:
        """Per-consumer aggregate: accesses and samples taken."""
        out: dict = {}
        for record in self._records.get(contributor, []):
            entry = out.setdefault(
                record.principal, {"accesses": 0, "samples": 0, "raw": 0}
            )
            entry["accesses"] += 1
            entry["samples"] += record.samples_released
            entry["raw"] += record.raw_access
        return out
