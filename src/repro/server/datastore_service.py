"""The remote data store service (paper Fig. 2, left box).

One service instance is one "remote data store": it can live on a
contributor's personal machine (one owner) or an institutional server
(every participant of that institution, per the IRB requirement of
Section 1).  It exposes:

* **upload API** — contributors (their phones) push packets or segments;
* **query API** — consumers pull data, with *every* access regulated by
  the owner's privacy rules;
* **rules API** — owners create/manage privacy rules; each mutation bumps
  a version and is pushed to the broker (rule sync);
* **profile API** — the broker pulls rules + places for contributor search;
* **web UI** — mounted by :mod:`repro.server.webui`.

Authentication: API keys in HTTPS POST bodies (Section 5.4).  The broker
itself authenticates with a dedicated key issued at pairing time; only the
broker may read rule snapshots or set consumer group memberships.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.auth.accounts import AccountRegistry, ROLE_CONSUMER, ROLE_CONTRIBUTOR
from repro.auth.apikeys import ApiKeyRegistry
from repro.datastore.cache import CacheEntry, ReleaseCache, query_shape
from repro.datastore.optimizer import MergePolicy
from repro.datastore.query import DataQuery
from repro.datastore.segment_store import SegmentStore
from repro.datastore.wavesegment import WaveSegment
from repro.exceptions import (
    AuthorizationError,
    BadRequestError,
    NotFoundError,
    NotPrimaryError,
    SensorSafeError,
)
from repro.net.http import Request, Router
from repro.net.overload import (
    STORE_ROUTE_CLASSES,
    AdmissionController,
    OverloadConfig,
)
from repro.net.transport import Network
from repro.rules.compiler import CompiledRuleCache
from repro.rules.engine import RuleEngine
from repro.rules.model import Rule
from repro.rules.parser import rule_from_json, rules_from_json, rules_to_json
from repro.rules.rulestore import RuleStore
from repro.sensors.packets import SensorPacket
from repro.server.audit import AuditLog
from repro.util.geo import LabeledPlace
from repro.util.idgen import DeterministicRng

BROKER_PRINCIPAL = "__broker__"
PRIMARY_PRINCIPAL = "__primary__"

ROLE_PRIMARY = "primary"
ROLE_REPLICA = "replica"


@dataclass(frozen=True)
class ReleaseEvent:
    """One engine-mediated release observed on a consumer-facing endpoint.

    ``segments`` are the (possibly merged) wave segments the store served
    to the engine; ``released`` is exactly what left the store.  Release
    guards (see :attr:`DataStoreService.release_guards`) receive these so
    external checkers — notably the conformance harness's query-containment
    invariant — can verify the API never returns more than the engine
    released, without re-implementing the query path.

    ``trace_id`` ties the release to the request's trace tree (empty when
    tracing is disabled), so a guard report can name the exact request.
    ``rules_version`` is the contributor's per-contributor sync version
    the release was evaluated under — the fleet-wide monotonic counter the
    privacy-SLO tracker compares against rule-mutation versions to decide
    whether a release was stale (see :mod:`repro.obs.slo`).
    """

    endpoint: str
    consumer: str
    contributor: str
    segments: tuple
    released: tuple
    trace_id: str = ""
    rules_version: int = 0


class DataStoreService:
    """One remote data store mounted on the simulated network."""

    def __init__(
        self,
        host: str,
        network: Network,
        *,
        institution: str = "self-hosted",
        merge_policy: Optional[MergePolicy] = None,
        directory: Optional[str] = None,
        seed: int = 0,
        enforce_closure: bool = True,
        durable: bool = False,
        wal_sync: str = "group",
        storage_faults=None,
        cache_capacity: int = 1024,
        cache_max_bytes: int = 32 << 20,
        role: str = ROLE_PRIMARY,
        engine: str = "interpreted",
        overload: str = "observe",
        overload_config: Optional[OverloadConfig] = None,
    ):
        if engine not in ("interpreted", "compiled"):
            raise ValueError(f"unknown engine mode {engine!r}")
        self.host = host
        #: Rule-evaluation strategy: "interpreted" walks rules per query;
        #: "compiled" evaluates through per-contributor compiled artifacts
        #: cached by rules-version epoch (see repro.rules.compiler).
        self.engine = engine
        self.network = network
        self.institution = institution
        #: "primary" serves reads and writes; "replica" only applies
        #: shipped WAL frames until the broker promotes it.  The store
        #: epoch is the fencing token: it only ever moves forward, and the
        #: broker bumps it at every promotion so a demoted primary's
        #: requests date themselves.
        self.role = role
        self.epoch = 1
        #: :class:`~repro.storage.replication.WalShipper` when this store
        #: replicates its WAL (see :meth:`enable_replication`).
        self.replication = None
        self._applier = None
        rng = DeterministicRng(seed).fork(f"store:{host}")
        self.store = SegmentStore(
            host, merge_policy=merge_policy, directory=directory, obs=network.obs
        )
        self.rules = RuleStore()
        # Stamp rule mutations with the deployment clock: the privacy-SLO
        # tracker anchors revocation latency to these timestamps.
        self.rules.set_clock(network.clock.now_ms)
        self.keys = ApiKeyRegistry(f"secret:{host}", rng.fork("keys"))
        self.accounts = AccountRegistry(rng.fork("accounts"))
        self.audit = AuditLog()
        self.enforce_closure = enforce_closure
        self.roles: dict[str, str] = {}
        self.places: dict[str, dict] = {}  # contributor -> {label: LabeledPlace}
        self.memberships: dict[str, frozenset] = {}  # consumer -> groups/studies
        #: Observers called with a :class:`ReleaseEvent` after every
        #: engine-mediated release.  Guards must not mutate anything; a
        #: guard raising aborts the request (fail closed, nothing leaks).
        self.release_guards: list[Callable[[ReleaseEvent], None]] = []
        self._broker_push: Optional[Callable[[dict], None]] = None
        #: Contributors whose persisted rules could not be trusted after a
        #: restart: they are deny-by-default until rules are re-published.
        self.fail_closed: set = set()
        #: Contributors migrated off this store -> destination host.  Any
        #: request naming them is fenced with :class:`NotPrimaryError` so a
        #: client's stale route cache self-identifies on first use (same
        #: 409-then-re-resolve contract as demotion).  In-memory only: a
        #: restarted source forgets the fence, but by then the broker
        #: directory already points at the destination, so fresh resolves
        #: never reach it (documented in docs/OPERATIONS.md).
        self.moved_out: dict[str, str] = {}
        #: Versioned rule-decision cache for the consumer-query hot path
        #: (``None`` disables it).  Created *before* durability opens so
        #: recovery's wholesale invalidation has a target; a zero capacity
        #: or byte budget turns the cache off.
        self.release_cache: Optional[ReleaseCache] = None
        if cache_capacity > 0 and cache_max_bytes > 0:
            self.release_cache = ReleaseCache(
                cache_capacity, cache_max_bytes, obs=network.obs, store=host
            )
        #: Per-contributor compiled rule artifacts, keyed by the same
        #: store-wide rules-version epoch as the release cache and
        #: invalidated at the same sites (places edits, recovery,
        #: replication places-apply, promotion).  Created before
        #: durability opens so recovery's sweep has a target.
        self.compiled_rules: Optional[CompiledRuleCache] = None
        if engine == "compiled":
            self.compiled_rules = CompiledRuleCache(obs=network.obs, store=host)
        self.durability = None
        self.recovery_report = None
        self.router = Router()
        self._mount_routes()
        #: Overload control (PR 9): admission + brownout on every route.
        #: "observe" (the default) accounts and reports would-shed
        #: decisions without shedding; "enforce" sheds with typed 503/504s
        #: *before* rule evaluation; "off" disables even the accounting.
        self.admission: Optional[AdmissionController] = None
        if overload != "off":
            self.admission = AdmissionController(
                host,
                network,
                mode=overload,
                config=overload_config,
                classes=STORE_ROUTE_CLASSES,
                cache_probe=self._cache_would_hit,
            )
            self.admission.attach(self.router)
        if durable:
            from repro.storage.durability import Durability

            self.durability = Durability(
                self, sync=wal_sync, faults=storage_faults
            )
            self.recovery_report = self.durability.open()
            self.fail_closed = set(self.recovery_report.fail_closed)
            for contributor in sorted(self.fail_closed):
                # Start the fail-closed dwell clock for the SLO tracker.
                network.obs.slo.fail_closed_entered(host, contributor)
        # Join the network only once recovery has succeeded: a failed
        # open() must leave no half-constructed host registered, or the
        # constructor retry dies on "host name already registered" instead
        # of the real storage error.
        network.register_host(host, self.router)
        # Registered after durability: a rule change is journaled (write-
        # ahead, force-synced) before the eager broker push propagates it,
        # so a crash between the two leaves the *store* ahead — which the
        # broker's restart reconciliation converges by pulling.
        self.rules.on_change(self._on_rules_changed)

    # ------------------------------------------------------------------
    # Broker pairing
    # ------------------------------------------------------------------

    def pair_broker(self, push: Optional[Callable[[dict], None]] = None) -> str:
        """Issue the broker's API key; optionally register an eager-sync push.

        ``push`` receives the profile JSON of a contributor whose rules
        changed; the broker wires this to its sync endpoint.
        """
        self.roles[BROKER_PRINCIPAL] = "broker"
        self._log_role(BROKER_PRINCIPAL, "broker")
        self._broker_push = push
        return self.keys.issue(BROKER_PRINCIPAL)

    def _on_rules_changed(self, snapshot) -> None:
        contributor = snapshot.contributor
        slo = self.network.obs.slo
        # An owner re-publishing rules lifts the post-recovery deny state.
        if contributor in self.fail_closed:
            self.fail_closed.discard(contributor)
            slo.fail_closed_cleared(self.host, contributor)
        # Open a revocation-latency window: releases evaluated at versions
        # below this mutation are stale until a fresh one settles it.
        slo.rule_mutated(
            contributor,
            snapshot.version,
            store=self.host,
            at_ms=self.rules.mutated_at(contributor) or None,
        )
        if self._broker_push is not None:
            self._broker_push(self._profile_json(contributor))

    def _profile_json(self, contributor: str) -> dict:
        snapshot = self.rules.snapshot(contributor)
        return {
            "Contributor": contributor,
            "Host": self.host,
            "Institution": self.institution,
            "Version": snapshot.version,
            "Rules": rules_to_json(snapshot.rules),
            "Places": [p.to_json() for p in self.places.get(contributor, {}).values()],
        }

    # ------------------------------------------------------------------
    # Replication & failover
    # ------------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        """True when this store currently serves reads and writes."""
        return self.role != ROLE_REPLICA

    @property
    def applier(self):
        """This store's frame applier, created on first use.

        Every store can receive shipped frames — a primary only ever gets
        them after it was demoted and re-pointed — but the applier (and
        its gauges) exist only on stores that actually replicate.
        """
        if self._applier is None:
            from repro.storage.replication import ReplicaApplier

            self._applier = ReplicaApplier(self)
        return self._applier

    def enable_replication(self, mode: str = "async", *, min_acks: int = 1):
        """Start shipping this store's WAL to replicas; returns the shipper.

        The shipper immediately backfills the current on-disk WAL
        generation, so state written before replication was wired (roles,
        early rules) still reaches replicas attached afterwards.
        """
        if self.replication is None:
            from repro.storage.replication import WalShipper

            self.replication = WalShipper(self, mode=mode, min_acks=min_acks)
            self.replication.backfill()
        return self.replication

    def pair_primary(self) -> str:
        """Issue the API key a primary uses to ship WAL frames here."""
        self.roles[PRIMARY_PRINCIPAL] = "primary"
        return self.keys.issue(PRIMARY_PRINCIPAL)

    def promote(self, epoch: int, rule_versions: Optional[dict] = None) -> dict:
        """Become the primary at ``epoch`` (broker-driven failover).

        ``rule_versions`` is the broker's mirror of per-contributor rule
        versions at its last successful sync.  Privacy stays fail-closed
        across the handover: any contributor whose applied rules are
        *older* than what the broker last saw — or entirely unknown here —
        is denied by default until their owner re-publishes rules, exactly
        like PR 4's unverifiable-rules recovery path.  A promotion may
        deny; it must never widen access.
        """
        self.epoch = max(self.epoch, int(epoch))
        self.role = ROLE_PRIMARY
        fenced = self._fence_rule_versions(rule_versions)
        if self.replication is not None:
            # Our stream is the authoritative one now; stop honoring any
            # fencing verdict aimed at the *old* primary's stream.
            self.replication.fenced = False
        if self.release_cache is not None:
            self.release_cache.invalidate_all("promotion")
        if self.compiled_rules is not None:
            self.compiled_rules.invalidate_all("promotion")
        return {
            "Host": self.host,
            "Epoch": self.epoch,
            "FailClosed": fenced,
            "AppliedLsn": self._applier.applied_lsn if self._applier else 0,
        }

    def _fence_rule_versions(self, rule_versions: Optional[dict]) -> list:
        """Deny-by-default any contributor whose rules lag the broker mirror.

        The shared handover fence (promotion *and* migration cutover): for
        each contributor whose applied rule version is older than what the
        broker last saw — or entirely unknown here — install an empty rule
        set (default deny) at a version *above* the broker's, so the deny
        state wins the next sync instead of the broker's stale-but-newer-
        looking mirror.  Same shape as recovery's fail-closed sweep.  A
        handover may deny; it must never widen access.
        """
        fenced = []
        for contributor, version in sorted((rule_versions or {}).items()):
            if self.rules.version_of(contributor) < int(version):
                self.rules.register(contributor)
                self.rules.restore(contributor, [], int(version) + 1)
                self.fail_closed.add(contributor)
                self.network.obs.slo.fail_closed_entered(self.host, contributor)
                fenced.append(contributor)
                if self.durability is not None:
                    # Journal the deny itself (restore() fires no hooks):
                    # a crash right after the handover must recover to
                    # deny, not to the stale rules this fencing rejected.
                    from repro.storage.recovery import OP_RULES

                    self.durability._append(
                        OP_RULES,
                        self.rules.snapshot(contributor).to_json(),
                        control=True,
                    )
        return fenced

    def demote(self, epoch: Optional[int] = None) -> dict:
        """Step down to replica (fenced, or administratively demoted)."""
        self.role = ROLE_REPLICA
        if epoch is not None:
            self.epoch = max(self.epoch, int(epoch))
        return {"Host": self.host, "Epoch": self.epoch, "Role": self.role}

    def _require_writable(self) -> None:
        if not self.is_primary:
            raise NotPrimaryError(
                f"store {self.host!r} is a replica (epoch {self.epoch}); "
                "re-resolve the contributor's primary at the broker"
            )

    def _require_resident(self, contributor: str) -> None:
        """Fence requests for a contributor migrated off this store.

        Raises the same :class:`NotPrimaryError` (409) as a demoted
        primary, so the client's existing one-fenced-retry path handles
        both: drop the cached route, re-resolve at the broker directory,
        retry once against the destination.
        """
        dest = self.moved_out.get(contributor)
        if dest is not None:
            raise NotPrimaryError(
                f"contributor {contributor!r} migrated off {self.host!r} "
                f"(now at {dest!r}); re-resolve at the broker directory"
            )

    def _require_primary_peer(self, request: Request) -> None:
        principal = self._authenticate(request)
        if self.roles.get(principal) != "primary":
            raise AuthorizationError("endpoint restricted to the paired primary")

    def _replication_barrier(self) -> None:
        """Ship WAL frames produced by the request that just mutated state.

        In ``semi-sync`` mode this is the commit acknowledgement barrier:
        the request fails (503, retryable) unless enough replicas hold the
        frames.  In ``async`` mode it is a best-effort pump.
        """
        if self.replication is not None and self.is_primary:
            self.replication.after_write()

    # ------------------------------------------------------------------
    # Registration helpers (used directly by the system facade too)
    # ------------------------------------------------------------------

    def register_contributor(self, name: str, password: str = "pw") -> str:
        """Register a data owner; returns their API key."""
        self.accounts.register(name, password, ROLE_CONTRIBUTOR)
        self.roles[name] = ROLE_CONTRIBUTOR
        self._log_role(name, ROLE_CONTRIBUTOR)
        self.rules.register(name)
        self.places.setdefault(name, {})
        return self.keys.issue(name)

    def register_consumer(self, name: str, password: str = "pw") -> str:
        """Register a data consumer; returns their API key."""
        self.accounts.register(name, password, ROLE_CONSUMER)
        self.roles[name] = ROLE_CONSUMER
        self._log_role(name, ROLE_CONSUMER)
        return self.keys.issue(name)

    def set_places(self, contributor: str, places: dict) -> None:
        """Replace a contributor's labeled places (journal + sync + cache)."""
        self.places[contributor] = dict(places)
        # Labeled places feed rule semantics but move no version counter,
        # so cached decisions cannot be keyed around them — drop them all.
        if self.release_cache is not None:
            self.release_cache.invalidate_all("places")
        if self.compiled_rules is not None:
            self.compiled_rules.invalidate_all("places")
        if self.durability is not None:
            self.durability.log_places(contributor)
        # Places affect rule semantics; nudge a sync so the broker's
        # search sees the same geography the engine enforces.
        if self.rules.version_of(contributor) or self._broker_push is not None:
            if self._broker_push is not None:
                self._broker_push(self._profile_json(contributor))

    def _log_role(self, principal: str, role: str) -> None:
        if self.durability is not None:
            self.durability.log_role(principal, role)

    def _wal_commit(self) -> None:
        """Group-commit barrier: journaled bulk mutations become durable.

        Only *barrier-bearing* requests call this — ``flush`` (the client's
        explicit durability point: upload…upload…flush ⇒ everything
        uploaded is on disk before the flush ack) and ``delete`` (an acked
        deletion must never resurrect).  Plain uploads ride the group
        window instead: under the ``group`` sync policy a crash can lose
        the last un-flushed uploads, which the device still holds and
        re-sends — the bounded-loss trade that keeps WAL ingest overhead
        inside the C10 budget.  Control-plane records (rules, roles,
        places, audit) never ride the window; they force-sync at append.
        """
        if self.durability is not None:
            self.durability.commit()

    def checkpoint(self) -> dict:
        """Snapshot state, write the generation manifest, reset the WAL."""
        if self.durability is None:
            from repro.server.persistence import save_service_state

            return {"Paths": save_service_state(self)}
        return self.durability.checkpoint()

    # ------------------------------------------------------------------
    # Auth plumbing
    # ------------------------------------------------------------------

    def _authenticate(self, request: Request) -> str:
        return self.keys.authenticate(request.api_key)

    def _require_contributor(self, request: Request, contributor: str) -> str:
        principal = self._authenticate(request)
        if principal != contributor:
            raise AuthorizationError(
                f"principal {principal!r} may not act for contributor {contributor!r}"
            )
        if self.roles.get(principal) != ROLE_CONTRIBUTOR:
            raise AuthorizationError(f"{principal!r} is not a data contributor")
        return principal

    def _require_broker(self, request: Request) -> None:
        principal = self._authenticate(request)
        if self.roles.get(principal) != "broker":
            raise AuthorizationError("endpoint restricted to the paired broker")

    def _membership(self, consumer: str) -> frozenset:
        return frozenset({consumer}) | self.memberships.get(consumer, frozenset())

    def _engine_for(self, contributor: str) -> RuleEngine:
        # Belt and braces: recovery already emptied a fail-closed
        # contributor's rules, and an empty rule set is default-deny.
        rules = () if contributor in self.fail_closed else self.rules.rules_of(contributor)
        if self.compiled_rules is not None:
            artifact = self.compiled_rules.artifact_for(
                contributor,
                epoch=self.rules.rules_version,
                fail_closed=contributor in self.fail_closed,
                rules=rules,
                places=self.places.get(contributor, {}),
                enforce_closure=self.enforce_closure,
            )
            return RuleEngine(
                rules,
                self.places.get(contributor, {}),
                membership=self._membership,
                enforce_closure=self.enforce_closure,
                compiled=artifact,
                obs=self.network.obs,
            )
        return RuleEngine(
            rules,
            self.places.get(contributor, {}),
            membership=self._membership,
            enforce_closure=self.enforce_closure,
            obs=self.network.obs,
        )

    def _trace_id(self) -> str:
        return self.network.obs.tracer.current_trace_id()

    def _emit_release(
        self, endpoint: str, consumer: str, contributor: str, segments, released
    ) -> None:
        if not self.release_guards:
            return
        event = ReleaseEvent(
            endpoint=endpoint,
            consumer=consumer,
            contributor=contributor,
            segments=tuple(segments),
            released=tuple(released),
            trace_id=self._trace_id(),
            rules_version=self.rules.version_of(contributor),
        )
        for guard in self.release_guards:
            guard(event)

    # ------------------------------------------------------------------
    # Cached release resolution (the consumer-query hot path)
    # ------------------------------------------------------------------

    def _cache_key(self, principal: str, contributor: str, query: DataQuery) -> tuple:
        """Everything a release decision depends on, folded into one key.

        Membership is keyed directly (a reverted membership may correctly
        resurrect an old entry); rules ride the store-wide epoch; store
        content rides the contributor's XOR fingerprint; the fail-closed
        flag covers recovery denying a contributor without a rule bump.
        Places changes move no component and invalidate wholesale instead.
        """
        return (
            principal,
            self._membership(principal),
            contributor,
            contributor in self.fail_closed,
            self.rules.rules_version,
            self.store.content_fingerprint(contributor),
            query_shape(query),
        )

    def _cache_would_hit(self, request: Request) -> bool:
        """Would this query be served from the release cache?

        The admission controller's brownout probe: under pressure, cold
        (cache-miss) queries shed while cached releases keep serving.
        Best-effort and strictly non-mutating — any auth or parse problem
        classifies as cold, and the real handler raises the proper error
        after admission.  Owner raw reads never touch the cache.
        """
        cache = self.release_cache
        if cache is None or len(cache) == 0:
            return False
        try:
            principal = self.keys.authenticate(request.api_key)
            contributor = str(request.body.get("Contributor", ""))
            if not contributor or principal == contributor:
                return False
            query = DataQuery.from_json(request.body.get("Query", {}))
            return cache.contains(self._cache_key(principal, contributor, query))
        except SensorSafeError:
            return False

    def _release_for(
        self, endpoint: str, principal: str, contributor: str, query: DataQuery
    ) -> CacheEntry:
        """Resolve one consumer query to its released payload, cached.

        On a miss (or with the cache disabled) this runs the full path —
        store query, rule-engine evaluation, JSON serialization — and
        memoizes the result; on a hit the stored entry is returned without
        touching store or engine.  Release guards and audit records fire
        identically either way: a hit replays the exact segments/released
        tuples the original evaluation produced, so the conformance
        harness's containment checks see no difference between the paths.
        """
        cache = self.release_cache
        if cache is None:
            return self._evaluate_release(endpoint, principal, contributor, query)
        key = self._cache_key(principal, contributor, query)
        entry = cache.get(key)
        obs = self.network.obs
        if obs is not None and obs.enabled:
            # The probe rides the enclosing request span as an attribute:
            # the lookup is a dict hit, far below span granularity.
            span = obs.tracer.current_span()
            if span is not None:
                span.set_attribute("cache_hit", entry is not None)
        if entry is None:
            entry = self._evaluate_release(endpoint, principal, contributor, query)
            cache.put(key, entry)
            return entry
        # A hit is still a served query for the store's bookkeeping, but
        # scans nothing — that is the point.
        self.store.stats.queries_served += 1
        self._emit_release(endpoint, principal, contributor, entry.segments, entry.released)
        return entry

    def _evaluate_release(
        self, endpoint: str, principal: str, contributor: str, query: DataQuery
    ) -> CacheEntry:
        """The uncached path: store scan + rule engine + serialization."""
        result = self.store.query(contributor, query)
        engine = self._engine_for(contributor)
        released = tuple(engine.evaluate(principal, result.segments))
        entry = CacheEntry(
            segments=tuple(result.segments),
            released=released,
            payload=[r.to_json() for r in released],
            scanned=result.scanned_segments,
        )
        self._emit_release(endpoint, principal, contributor, entry.segments, released)
        return entry

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _mount_routes(self) -> None:
        add = self.router.add
        add("POST", "/api/register", self._h_register)
        add("POST", "/api/upload", self._h_upload)
        add("POST", "/api/upload_packets", self._h_upload_packets)
        add("POST", "/api/flush", self._h_flush)
        add("POST", "/api/query", self._h_query)
        add("POST", "/api/rules/list", self._h_rules_list)
        add("POST", "/api/rules/add", self._h_rules_add)
        add("POST", "/api/rules/remove", self._h_rules_remove)
        add("POST", "/api/rules/replace", self._h_rules_replace)
        add("POST", "/api/rules/download", self._h_rules_download)
        add("POST", "/api/places/set", self._h_places_set)
        add("POST", "/api/places/list", self._h_places_list)
        add("POST", "/api/profile", self._h_profile)
        add("POST", "/api/profiles", self._h_profiles)
        add("POST", "/api/migrate/export", self._h_migrate_export)
        add("POST", "/api/migrate/install", self._h_migrate_install)
        add("POST", "/api/migrate/fence", self._h_migrate_fence)
        add("POST", "/api/migrate/complete", self._h_migrate_complete)
        add("POST", "/api/membership/set", self._h_membership_set)
        add("POST", "/api/stats", self._h_stats)
        add("POST", "/api/audit/list", self._h_audit_list)
        add("POST", "/api/recovery", self._h_recovery)
        add("POST", "/api/audit/summary", self._h_audit_summary)
        add("POST", "/api/aggregate", self._h_aggregate)
        add("POST", "/api/delete", self._h_delete)
        add("POST", "/api/replicate/append", self._h_replicate_append)
        add("POST", "/api/replicate/status", self._h_replicate_status)
        add("POST", "/api/health", self._h_health)
        add("POST", "/api/promote", self._h_promote)
        add("POST", "/api/demote", self._h_demote)
        add("GET", "/api/metrics", self._h_metrics)

    def _h_replicate_append(self, request: Request) -> dict:
        """Primary-only: verify and apply one batch of shipped WAL frames."""
        self._require_primary_peer(request)
        return self.applier.apply_batch(request.body)

    def _h_replicate_status(self, request: Request) -> dict:
        """Replication progress from both sides of this store."""
        self._authenticate(request)
        return {
            "Host": self.host,
            "Role": self.role,
            "Epoch": self.epoch,
            "Shipper": self.replication.status() if self.replication else None,
            "Applier": self._applier.status() if self._applier else None,
        }

    def _h_health(self, request: Request) -> dict:
        """Liveness + progress probe for the broker's failure detector."""
        self._authenticate(request)
        return {
            "Host": self.host,
            "Role": self.role,
            "Epoch": self.epoch,
            "AppliedLsn": self._applier.applied_lsn if self._applier else 0,
            "LastLsn": (
                self.durability.wal.last_lsn
                if self.durability is not None and self.durability.wal is not None
                else 0
            ),
            "FailClosed": sorted(self.fail_closed),
        }

    def _h_promote(self, request: Request) -> dict:
        """Broker-only: become primary at the given epoch, fenced fail-closed."""
        self._require_broker(request)
        return self.promote(
            int(request.body.get("Epoch", self.epoch + 1)),
            dict(request.body.get("RuleVersions", {})),
        )

    def _h_demote(self, request: Request) -> dict:
        """Broker-only: step down to replica at the given epoch."""
        self._require_broker(request)
        epoch = request.body.get("Epoch")
        return self.demote(int(epoch) if epoch is not None else None)

    # ------------------------------------------------------------------
    # Shard migration (broker-driven; see repro.broker.rebalance)
    # ------------------------------------------------------------------

    def _h_migrate_export(self, request: Request) -> dict:
        """Broker-only: export migration records for a contributor range.

        With ``FromLsn`` 0 this is the snapshot bootstrap (full durable
        state of the moving contributors, WAL-shaped); above 0 it is a
        catch-up round (the filtered WAL tail).  ``Base`` says which the
        response actually is: a catch-up that cannot prove WAL coverage —
        non-durable source, or a checkpoint truncated past ``FromLsn`` —
        degrades to a fresh snapshot, which idempotent records make safe.
        ``LastLsn`` is captured *before* the export so the next round
        covers anything racing it.
        """
        from repro.storage.migration import migration_records, wal_records_since

        self._require_broker(request)
        contributors = [str(c) for c in request.body.get("Contributors", [])]
        from_lsn = int(request.body.get("FromLsn", 0))
        records, last_lsn, complete = [], 0, False
        if from_lsn > 0:
            records, last_lsn, complete = wal_records_since(
                self, from_lsn, contributors
            )
        if from_lsn == 0 or not complete:
            if self.durability is not None and self.durability.wal is not None:
                self.durability.wal.commit()
                last_lsn = self.durability.wal.last_lsn
            records = migration_records(self, contributors)
            base = "snapshot"
        else:
            base = "wal"
        return {
            "Host": self.host,
            "Records": [[op, data] for op, data in records],
            "LastLsn": last_lsn,
            "Base": base,
        }

    def _h_migrate_install(self, request: Request) -> dict:
        """Broker-only: install exported records on this (destination) store.

        Records flow through the recovery apply path and are re-journaled
        into this store's own WAL; the replication barrier then ships them
        to any replicas, so the migrated range is as durable here as
        natively written data.
        """
        from repro.storage.migration import install_records

        self._require_broker(request)
        self._require_writable()
        result = install_records(self, request.body.get("Records", []))
        self._wal_commit()
        self._replication_barrier()
        return {"Host": self.host, **result}

    def _h_migrate_fence(self, request: Request) -> dict:
        """Broker-only: stop serving the moving contributors (cutover fence).

        After this returns, every request naming a fenced contributor gets
        :class:`NotPrimaryError` — the old shard self-demotes for exactly
        the moved range.  The response carries the fence-time ``LastLsn``
        so the coordinator's final catch-up round provably drains every
        write that committed before the fence: zero committed-write loss.
        """
        self._require_broker(request)
        dest = str(request.body.get("Dest", ""))
        contributors = [str(c) for c in request.body.get("Contributors", [])]
        if not dest or not contributors:
            raise BadRequestError("fence needs Dest and Contributors")
        for contributor in contributors:
            self.moved_out[contributor] = dest
        # Fenced contributors' cached decisions are unreachable (the fence
        # fires before cache lookup), but drop them anyway: their memory
        # now belongs to contributors still resident here.
        if self.release_cache is not None:
            self.release_cache.invalidate_all("migration")
        if self.compiled_rules is not None:
            self.compiled_rules.invalidate_all("migration")
        last_lsn = 0
        if self.durability is not None and self.durability.wal is not None:
            self.durability.wal.commit()
            last_lsn = self.durability.wal.last_lsn
        return {
            "Host": self.host,
            "Fenced": sorted(contributors),
            "LastLsn": last_lsn,
        }

    def _h_migrate_complete(self, request: Request) -> dict:
        """Broker-only: destination-side cutover verification, fail-closed.

        ``RuleVersions`` is the broker's mirror for the moved range; any
        contributor whose installed rules can't be verified against it is
        denied by default (:meth:`_fence_rule_versions` — the promotion
        fence) until their owner re-publishes.  A migration may deny; it
        must never widen access.
        """
        self._require_broker(request)
        self._require_writable()
        fenced = self._fence_rule_versions(
            dict(request.body.get("RuleVersions", {}))
        )
        if fenced:
            if self.release_cache is not None:
                self.release_cache.invalidate_all("migration")
            if self.compiled_rules is not None:
                self.compiled_rules.invalidate_all("migration")
        self._replication_barrier()
        return {
            "Host": self.host,
            "FailClosed": fenced,
            "RuleVersions": {
                str(name): self.rules.version_of(str(name))
                for name in request.body.get("RuleVersions", {})
            },
        }

    def _h_profiles(self, request: Request) -> dict:
        """Broker-only: bulk profile pull for one sync round.

        One request per store instead of one per contributor — the fan-out
        unit of :meth:`repro.broker.sync.SyncManager.pull_all`.  Unknown
        and migrated-away contributors are listed in ``Missing`` rather
        than failing the batch; the broker marks them stale and re-resolves.
        """
        self._require_broker(request)
        names = [str(c) for c in request.body.get("Contributors", [])]
        if not names:
            names = sorted(self.rules.contributors())
        profiles, missing = [], []
        for name in names:
            if name in self.moved_out or name not in self.rules.contributors():
                missing.append(name)
            else:
                profiles.append(self._profile_json(name))
        return {"Host": self.host, "Profiles": profiles, "Missing": missing}

    def _h_recovery(self, request: Request) -> dict:
        """What the last restart found on disk, and who is denied for it."""
        self._authenticate(request)
        report = self.recovery_report
        return {
            "Host": self.host,
            "Durable": self.durability is not None,
            "FailClosed": sorted(self.fail_closed),
            "Recovery": report.to_json() if report is not None else None,
        }

    def _h_metrics(self, request: Request) -> dict:
        """Telemetry scrape: the shared registry, labels redaction-checked."""
        return {"Host": self.host, "Metrics": self.network.obs.snapshot()}

    def _h_register(self, request: Request) -> dict:
        """Open registration endpoint.

        Consumers are registered here by the broker on their behalf (the
        paper: "the registration process is automatically handled by the
        broker"); contributors register once at store setup.
        """
        self._require_writable()
        body = request.body
        name = body.get("Username")
        role = body.get("Role")
        if not name or role not in (ROLE_CONTRIBUTOR, ROLE_CONSUMER):
            raise BadRequestError("registration needs Username and Role")
        password = str(body.get("Password", "pw"))
        if role == ROLE_CONTRIBUTOR:
            key = self.register_contributor(str(name), password)
        else:
            key = self.register_consumer(str(name), password)
        return {"ApiKey": key, "Host": self.host}

    def _h_upload(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        segments = request.body.get("Segments", [])
        stored = 0
        duplicates = 0
        for obj in segments:
            segment = WaveSegment.from_json(obj)
            if segment.contributor != contributor:
                raise AuthorizationError("cannot upload segments owned by someone else")
            before = self.store.duplicate_uploads
            stored += len(self.store.add_segment(segment))
            duplicates += self.store.duplicate_uploads - before
        self._replication_barrier()
        return {"Accepted": len(segments), "Finalized": stored, "Duplicates": duplicates}

    def _h_upload_packets(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        packets = request.body.get("Packets", [])
        stored = 0
        for obj in packets:
            packet = SensorPacket.from_json(obj)
            stored += len(self.store.add_packet(contributor, packet))
        self._replication_barrier()
        return {"Accepted": len(packets), "Finalized": stored}

    def _h_flush(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        finalized = len(self.store.flush())
        self._wal_commit()
        self._replication_barrier()
        return {"Finalized": finalized}

    def _h_query(self, request: Request) -> dict:
        """The query API: every access regulated by the owner's rules.

        The owner reading their own data bypasses the engine — the paper's
        web UI lets contributors "view their own data" unfiltered.
        """
        self._require_writable()  # replicas serve no reads either
        principal = self._authenticate(request)
        contributor = str(request.body.get("Contributor", ""))
        if not contributor:
            raise BadRequestError("query needs a Contributor")
        self._require_resident(contributor)
        if contributor not in self.rules.contributors():
            raise NotFoundError(f"no such contributor here: {contributor!r}")
        query = DataQuery.from_json(request.body.get("Query", {}))
        costs = self.network.obs.costs
        token = costs.start(self.host)
        if principal == contributor:
            result = self.store.query(contributor, query)
            self.audit.record_access(
                principal=principal,
                contributor=contributor,
                query=query.to_json(),
                raw_access=True,
                segments_scanned=result.scanned_segments,
                trace_id=self._trace_id(),
            )
            costs.finish(
                token,
                endpoint="/api/query",
                consumer=principal,
                contributor=contributor,
                segments_released=len(result.segments),
                released_bytes=sum(s.storage_bytes() for s in result.segments),
            )
            return {
                "Raw": True,
                "Segments": [s.to_json() for s in result.segments],
                "Scanned": result.scanned_segments,
            }
        entry = self._release_for("/api/query", principal, contributor, query)
        self.network.obs.slo.release_observed(
            contributor, self.rules.version_of(contributor), store=self.host
        )
        self.audit.record_access(
            principal=principal,
            contributor=contributor,
            query=query.to_json(),
            raw_access=False,
            segments_scanned=entry.scanned,
            released=entry.released,
            trace_id=self._trace_id(),
        )
        costs.finish(
            token,
            endpoint="/api/query",
            consumer=principal,
            contributor=contributor,
            segments_released=len(entry.released),
            released_bytes=self._released_bytes(entry.released),
        )
        return {
            "Raw": False,
            "Released": list(entry.payload),
            "Scanned": entry.scanned,
        }

    @staticmethod
    def _released_bytes(released) -> int:
        """Approximate wire size of the released pieces (cost attribution)."""
        total = 0
        for item in released:
            segment = getattr(item, "segment", None)
            total += segment.storage_bytes() if segment is not None else 64
        return total

    def _h_rules_list(self, request: Request) -> dict:
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        snapshot = self.rules.snapshot(contributor)
        return {"Version": snapshot.version, "Rules": rules_to_json(snapshot.rules)}

    def _h_rules_add(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        rule = rule_from_json(request.body.get("Rule", {}))
        self.rules.add(contributor, rule)
        self._replication_barrier()
        return {"RuleId": rule.rule_id, "Version": self.rules.version_of(contributor)}

    def _h_rules_remove(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        rule_id = str(request.body.get("RuleId", ""))
        self.rules.remove(contributor, rule_id)
        self._replication_barrier()
        return {"Removed": rule_id, "Version": self.rules.version_of(contributor)}

    def _h_rules_replace(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        rules = rules_from_json(request.body.get("Rules", []))
        self.rules.replace_all(contributor, rules)
        self._replication_barrier()
        return {"Count": len(rules), "Version": self.rules.version_of(contributor)}

    def _h_rules_download(self, request: Request) -> dict:
        """The phone downloads its owner's rules for rule-aware collection."""
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        snapshot = self.rules.snapshot(contributor)
        return {
            "Version": snapshot.version,
            "Rules": rules_to_json(snapshot.rules),
            "Places": [p.to_json() for p in self.places.get(contributor, {}).values()],
        }

    def _h_places_set(self, request: Request) -> dict:
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        places = {}
        for obj in request.body.get("Places", []):
            place = LabeledPlace.from_json(obj)
            places[place.label] = place
        self.set_places(contributor, places)
        self._replication_barrier()
        return {"Count": len(places)}

    def _h_places_list(self, request: Request) -> dict:
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        return {"Places": [p.to_json() for p in self.places.get(contributor, {}).values()]}

    def _h_profile(self, request: Request) -> dict:
        """Broker-only: rules + places snapshot for contributor search."""
        self._require_broker(request)
        contributor = str(request.body.get("Contributor", ""))
        self._require_resident(contributor)
        if contributor not in self.rules.contributors():
            raise NotFoundError(f"no such contributor here: {contributor!r}")
        return self._profile_json(contributor)

    def _h_membership_set(self, request: Request) -> dict:
        """Broker-only: which groups/studies a consumer belongs to."""
        self._require_broker(request)
        consumer = str(request.body.get("Consumer", ""))
        groups = frozenset(str(g) for g in request.body.get("Groups", []))
        self.memberships[consumer] = groups
        return {"Consumer": consumer, "Groups": sorted(groups)}

    def _h_aggregate(self, request: Request) -> dict:
        """Windowed aggregates, computed behind the rule engine.

        A consumer's aggregate only ever sees the raw payload their rules
        release; the owner aggregates over everything.
        """
        from repro.datastore.aggregate import (
            AggregateSpec,
            aggregate_released,
            aggregate_segments,
        )

        self._require_writable()  # replicas serve no reads either
        principal = self._authenticate(request)
        contributor = str(request.body.get("Contributor", ""))
        self._require_resident(contributor)
        if contributor not in self.rules.contributors():
            raise NotFoundError(f"no such contributor here: {contributor!r}")
        query = DataQuery.from_json(request.body.get("Query", {}))
        spec = AggregateSpec.from_json(request.body.get("Aggregate", {}))
        costs = self.network.obs.costs
        token = costs.start(self.host)
        if principal == contributor:
            result = self.store.query(contributor, query)
            rows = aggregate_segments(result.segments, spec)
            raw = True
            released: tuple = ()
            scanned = result.scanned_segments
        else:
            entry = self._release_for("/api/aggregate", principal, contributor, query)
            self.network.obs.slo.release_observed(
                contributor, self.rules.version_of(contributor), store=self.host
            )
            rows = aggregate_released(entry.released, spec)
            raw = False
            released = entry.released
            scanned = entry.scanned
        self.audit.record_access(
            principal=principal,
            contributor=contributor,
            query={**query.to_json(), "Aggregate": spec.to_json()},
            raw_access=raw,
            segments_scanned=scanned,
            released=released,
            trace_id=self._trace_id(),
        )
        costs.finish(
            token,
            endpoint="/api/aggregate",
            consumer=principal,
            contributor=contributor,
            segments_released=len(released),
            released_bytes=self._released_bytes(released),
        )
        return {"Rows": [r.to_json() for r in rows]}

    def _h_delete(self, request: Request) -> dict:
        """Owner-only data deletion — the teeth behind "data ownership".

        Remote data stores exist so contributors keep control of their
        data; that includes destroying it.  Only the owner may delete, and
        deletions are recorded in the audit trail.
        """
        self._require_writable()
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        query = DataQuery.from_json(request.body.get("Query", {}))
        removed = self.store.delete(contributor, query)
        self._wal_commit()
        self._replication_barrier()
        self.audit.record_access(
            principal=contributor,
            contributor=contributor,
            query={**query.to_json(), "Delete": True},
            raw_access=True,
            segments_scanned=removed,
            trace_id=self._trace_id(),
        )
        return {"Deleted": removed}

    def _h_audit_list(self, request: Request) -> dict:
        """The owner's access trail: who queried what, what left the store."""
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        limit = request.body.get("Limit")
        records = self.audit.trail_of(
            contributor, limit=int(limit) if limit is not None else None
        )
        return {"Records": [r.to_json() for r in records]}

    def _h_audit_summary(self, request: Request) -> dict:
        """Per-consumer aggregate of accesses and samples taken."""
        contributor = str(request.body.get("Contributor", ""))
        self._require_contributor(request, contributor)
        self._require_resident(contributor)
        return {"Summary": self.audit.summary(contributor)}

    def _h_stats(self, request: Request) -> dict:
        self._authenticate(request)
        stats = self.store.stats
        return {
            "Segments": stats.n_segments,
            "Samples": stats.n_samples,
            "StorageBytes": stats.storage_bytes,
            "QueriesServed": stats.queries_served,
            "SegmentsScanned": stats.segments_scanned,
        }
