"""The broker service (paper Fig. 2, right box).

Exposes the broker's HTTP API:

* consumer account registration and login;
* contributor listing and *adding contributors to a consumer's account*,
  which auto-registers the consumer at each contributor's remote data
  store, obtains an API key there, and escrows it (Section 5.4);
* contributor search over synced privacy rules;
* the rule-sync endpoint remote data stores push profiles to;
* study management (group/study names usable in Consumer conditions);
* a convenience data proxy for the broker's web UI ("they can also access
  a contributor's data through the web user interface") — note that
  programmatic consumers bypass this proxy and talk to stores directly,
  which is why the broker never becomes a data-path bottleneck.
"""

from __future__ import annotations

import time

from repro.auth.accounts import AccountRegistry, ROLE_CONSUMER
from repro.auth.apikeys import ApiKeyRegistry, KeyEscrow
from repro.broker.directory import ShardDirectory
from repro.broker.failover import FailoverManager
from repro.broker.rebalance import ShardRebalancer
from repro.broker.registry import ContributorRegistry, StudyRegistry
from repro.broker.search import ContributorSearch, SearchCriteria
from repro.broker.sync import SyncManager
from repro.exceptions import (
    AuthorizationError,
    BadRequestError,
    NotFoundError,
)
from repro.net.client import HttpClient
from repro.net.http import Request, Router
from repro.net.overload import (
    BROKER_ROUTE_CLASSES,
    AdmissionController,
    OverloadConfig,
)
from repro.net.resilience import RetryPolicy
from repro.net.transport import Network
from repro.obs.fleet import FleetAggregator
from repro.util.idgen import DeterministicRng

STORE_PRINCIPAL_PREFIX = "store:"


class BrokerService:
    """The broker mounted on the simulated network."""

    def __init__(
        self,
        network: Network,
        host: str = "broker",
        *,
        seed: int = 0,
        overload: str = "observe",
        overload_config: "OverloadConfig | None" = None,
    ):
        self.host = host
        self.network = network
        rng = DeterministicRng(seed).fork(f"broker:{host}")
        self.registry = ContributorRegistry()
        self.studies = StudyRegistry()
        #: The versioned routing table (PR 10): consistent-hash placement
        #: plus a monotonic routing_epoch that every route change bumps,
        #: so stale client route caches are unreachable by construction.
        self.directory = ShardDirectory(self.registry, obs=network.obs)
        self.sync = SyncManager(self.registry, obs=network.obs)
        self.search = ContributorSearch(self.registry, membership=self._membership)
        self.keys = ApiKeyRegistry(f"secret:{host}", rng.fork("keys"))
        self.accounts = AccountRegistry(rng.fork("accounts"))
        self.escrow = KeyEscrow()
        # Pull-sync and auto-registration calls ride the same retry policy
        # the phones use; on a fault-free network it never fires.
        self.client = HttpClient(network, name=host, retry=RetryPolicy())
        #: broker's own API keys at each store host (for profile pulls).
        self.store_keys: dict[str, str] = {}
        #: replicated-store failure detection and promotion (PR 6).
        self.failover = FailoverManager(self)
        #: online shard split/migration coordinator (PR 10).
        self.rebalancer = ShardRebalancer(self)
        #: fleet-wide telemetry aggregation (PR 8): scrapes every paired
        #: host's /api/metrics into versioned, tombstone-aware snapshots.
        self.fleet = FleetAggregator(self)
        #: per-consumer saved contributor lists, keyed by list name.
        self.saved_lists: dict[str, dict] = {}
        self.router = Router()
        self._mount_routes()
        #: Overload control (PR 9): same contract as the stores' —
        #: "observe" accounts without shedding, "enforce" sheds typed
        #: 503/504s, "off" disables the gate entirely.
        self.admission: "AdmissionController | None" = None
        if overload != "off":
            self.admission = AdmissionController(
                host,
                network,
                mode=overload,
                config=overload_config,
                classes=BROKER_ROUTE_CLASSES,
            )
            self.admission.attach(self.router)
        network.register_host(host, self.router)

    # ------------------------------------------------------------------
    # Pairing with data stores (in-process setup path)
    # ------------------------------------------------------------------

    def attach_store(self, store_service, *, eager_sync: bool = True) -> None:
        """Pair with a :class:`DataStoreService`: exchange keys, wire sync.

        The exchange is mutual: the broker obtains a key at the store (for
        profile pulls and membership pushes) and the store obtains a key
        at the broker (for eager rule-sync pushes over the network).  With
        ``eager_sync=False`` the store never pushes and the broker relies
        on :meth:`pull_profiles` — the lazy mode of the C5 ablation.
        """
        store_key = self.keys.issue(f"{STORE_PRINCIPAL_PREFIX}{store_service.host}")
        store_client = HttpClient(
            self.network, name=store_service.host, api_key=store_key
        )
        broker_host = self.host

        def push_over_network(profile: dict) -> None:
            store_client.post(f"https://{broker_host}/api/sync", {"Profile": profile})

        broker_key = store_service.pair_broker(
            push=push_over_network if eager_sync else None
        )
        self.store_keys[store_service.host] = broker_key

    def register_contributor(self, name: str, host: str, institution: str = "self-hosted"):
        """Record a contributor and their store (called at store signup).

        The paper: "When the data contributors are first registered on
        their data store, they are automatically registered on the broker,
        too."
        """
        return self.registry.register(name, host, institution)

    def pull_profiles(self, *, deadline_ms: int = 10_000) -> int:
        """Periodic-pull sync across every known store.

        ``deadline_ms`` bounds each shard's bulk pull so one slow host
        costs the round a bounded wait, not a stall (see
        :meth:`SyncManager.pull_all`).
        """
        return self.sync.pull_all(
            self.client, self.store_keys, deadline_ms=deadline_ms
        )

    def reconcile_store(self, store_service) -> dict:
        """Converge with a store that restarted (crash recovery).

        A restart rotates the store's keys, so the pairing is re-done
        first (re-issuing the broker's key there), then every contributor
        on that host is re-pulled: rule versions are monotonic, so the
        newer side — including a recovery's fail-closed deny state, which
        carries a bumped version — wins on both ends.
        """
        self.attach_store(store_service, eager_sync=True)
        return self.sync.reconcile_host(
            self.client, store_service.host, self.store_keys
        )

    def attach_replica_set(self, primary, replicas, **kwargs):
        """Pair a primary and its replicas, wiring WAL shipping + failover.

        Convenience over :meth:`FailoverManager.register_set`; see
        :mod:`repro.broker.failover` for the promotion/fencing contract.
        """
        return self.failover.register_set(primary, replicas, **kwargs)

    # ------------------------------------------------------------------
    # Consumer-side helpers
    # ------------------------------------------------------------------

    def register_consumer(self, name: str, password: str = "pw") -> str:
        self.accounts.register(name, password, ROLE_CONSUMER)
        return self.keys.issue(name)

    def _membership(self, consumer: str) -> frozenset:
        return frozenset({consumer}) | self.studies.studies_of_consumer(consumer)

    def add_contributors_to_account(self, consumer: str, contributors) -> dict:
        """Auto-register ``consumer`` at each contributor's store.

        Returns ``{contributor: store host}``.  Keys obtained from the
        stores go into escrow; membership (study names) is propagated so
        the stores resolve group-based Consumer conditions identically.
        """
        out = {}
        groups = sorted(self._membership(consumer) - {consumer})
        for name in contributors:
            record = self.registry.get(name)
            if self.escrow.key_for(consumer, record.host) is None:
                body = self.client.post(
                    f"https://{record.host}/api/register",
                    {"Username": consumer, "Role": ROLE_CONSUMER},
                )
                self.escrow.store_key(consumer, record.host, str(body["ApiKey"]))
                broker_key = self.store_keys.get(record.host)
                if broker_key is not None:
                    self.client.with_key(broker_key).post(
                        f"https://{record.host}/api/membership/set",
                        {"Consumer": consumer, "Groups": groups},
                    )
            out[name] = record.host
        return out

    # ------------------------------------------------------------------
    # Auth plumbing
    # ------------------------------------------------------------------

    def _authenticate(self, request: Request) -> str:
        return self.keys.authenticate(request.api_key)

    def _require_consumer(self, request: Request) -> str:
        principal = self._authenticate(request)
        account = self.accounts.get(principal)
        if account is None or account.role != ROLE_CONSUMER:
            raise AuthorizationError(f"{principal!r} is not a registered data consumer")
        return principal

    def _require_store(self, request: Request) -> str:
        principal = self._authenticate(request)
        if not principal.startswith(STORE_PRINCIPAL_PREFIX):
            raise AuthorizationError("endpoint restricted to paired data stores")
        return principal[len(STORE_PRINCIPAL_PREFIX) :]

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _mount_routes(self) -> None:
        add = self.router.add
        add("POST", "/api/register_consumer", self._h_register_consumer)
        add("POST", "/api/contributors/list", self._h_contributors_list)
        add("POST", "/api/contributors/add", self._h_contributors_add)
        add("POST", "/api/keys", self._h_keys)
        add("POST", "/api/search", self._h_search)
        add("POST", "/api/route", self._h_route)
        add("POST", "/api/shards/status", self._h_shards_status)
        add("POST", "/api/lists/save", self._h_lists_save)
        add("POST", "/api/lists/get", self._h_lists_get)
        add("POST", "/api/studies/create", self._h_studies_create)
        add("POST", "/api/studies/join", self._h_studies_join)
        add("POST", "/api/sync", self._h_sync)
        add("POST", "/api/replicas/status", self._h_replicas_status)
        add("POST", "/api/data", self._h_data_proxy)
        add("GET", "/api/metrics", self._h_metrics)
        add("GET", "/api/fleet/metrics", self._h_fleet_metrics)

    def _h_metrics(self, request: Request) -> dict:
        """Telemetry scrape: the shared registry, labels redaction-checked."""
        return {"Host": self.host, "Metrics": self.network.obs.snapshot()}

    def _h_fleet_metrics(self, request: Request) -> dict:
        """Fleet telemetry: scrape every host now, serve the fresh snapshot."""
        return self.fleet.scrape()

    def _h_register_consumer(self, request: Request) -> dict:
        name = str(request.body.get("Username", ""))
        if not name:
            raise BadRequestError("registration needs a Username")
        key = self.register_consumer(name, str(request.body.get("Password", "pw")))
        return {"ApiKey": key}

    def _h_contributors_list(self, request: Request) -> dict:
        self._authenticate(request)
        return {
            "Contributors": [
                {
                    "Contributor": r.name,
                    "Host": r.host,
                    "Institution": r.institution,
                    "RulesVersion": r.rules_version,
                }
                for r in self.registry.all()
            ]
        }

    def _h_contributors_add(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        contributors = [str(c) for c in request.body.get("Contributors", [])]
        added = self.add_contributors_to_account(consumer, contributors)
        return {"Added": added}

    def _h_keys(self, request: Request) -> dict:
        """The consumer's escrowed key ring: {store host: API key}."""
        consumer = self._require_consumer(request)
        return {"Keys": self.escrow.ring_of(consumer)}

    def _h_search(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        criteria_json = dict(request.body.get("Criteria", {}))
        criteria_json.setdefault("Consumer", consumer)
        if criteria_json["Consumer"] != consumer:
            raise AuthorizationError("cannot search on behalf of another consumer")
        criteria = SearchCriteria.from_json(criteria_json)
        obs = self.network.obs
        started = time.perf_counter()
        with obs.tracer.start_span("broker.search", consumer=consumer) as span:
            matches, shard_stats = self.search.search_sharded(criteria)
            span.set_attributes(
                matches=len(matches), shards=len(shard_stats)
            )
        obs.metrics.histogram("broker_search_us").observe(
            (time.perf_counter() - started) * 1e6
        )
        obs.metrics.counter("broker_searches_total").inc()
        errors = sum(s["Errors"] for s in shard_stats.values())
        if errors:
            obs.metrics.counter("search_shard_errors_total").inc(errors)
        return {
            "Matches": [{"Contributor": r.name, "Host": r.host} for r in matches],
            "RoutingEpoch": self.directory.routing_epoch,
            "Shards": shard_stats,
        }

    def _h_route(self, request: Request) -> dict:
        """Directory lookup: authoritative (host, epoch) for one contributor.

        The client caches the pair and talks to the store directly; when
        a route goes stale the old shard answers 409 and the client
        re-resolves here — one bounded retry, never a silent wrong read.
        """
        self._authenticate(request)
        contributor = str(request.body.get("Contributor", ""))
        if not contributor:
            raise BadRequestError("route lookup needs a Contributor")
        host, epoch = self.directory.route(contributor)
        return {"Contributor": contributor, "Host": host, "RoutingEpoch": epoch}

    def _h_shards_status(self, request: Request) -> dict:
        """Shard topology + rebalance history, for operators and the CLI."""
        self._authenticate(request)
        return {
            "Directory": self.directory.status(),
            "Rebalancer": self.rebalancer.status(),
        }

    def _h_lists_save(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        list_name = str(request.body.get("Name", "default"))
        members = [str(c) for c in request.body.get("Contributors", [])]
        for name in members:
            self.registry.get(name)  # 404 on unknown contributors
        self.saved_lists.setdefault(consumer, {})[list_name] = members
        return {"Name": list_name, "Count": len(members)}

    def _h_lists_get(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        list_name = str(request.body.get("Name", "default"))
        lists = self.saved_lists.get(consumer, {})
        if list_name not in lists:
            raise NotFoundError(f"no saved list {list_name!r}")
        return {"Name": list_name, "Contributors": lists[list_name]}

    def _h_studies_create(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        study = str(request.body.get("Study", ""))
        if not study:
            raise BadRequestError("study creation needs a Study name")
        self.studies.create(study, coordinators=[consumer])
        return {"Study": study, "Coordinators": [consumer]}

    def _h_studies_join(self, request: Request) -> dict:
        consumer = self._require_consumer(request)
        study = str(request.body.get("Study", ""))
        self.studies.add_coordinator(study, consumer)
        return {"Study": study, "Joined": consumer}

    def _h_replicas_status(self, request: Request) -> dict:
        """Replica-set topology: who is primary, at which epoch, who lags."""
        self._authenticate(request)
        return {"Sets": self.failover.status(), "Events": list(self.failover.events)}

    def _h_sync(self, request: Request) -> dict:
        """Rule-sync push endpoint for remote data stores."""
        store_host = self._require_store(request)
        profile = dict(request.body.get("Profile", {}))
        if profile.get("Host") != store_host:
            raise AuthorizationError("stores may only sync their own contributors")
        name = str(profile.get("Contributor", ""))
        if name and name not in self.registry:
            self.registry.register(name, store_host, str(profile.get("Institution", "")))
        applied = self.sync.apply_profile(profile)
        return {"Applied": applied}

    def _h_data_proxy(self, request: Request) -> dict:
        """Web-UI convenience: fetch a contributor's data via the broker.

        The broker forwards the query to the store using the consumer's
        escrowed key.  Payload transits the broker — which is exactly why
        programmatic consumers use the direct path instead (benchmark C2
        contrasts the two).
        """
        consumer = self._require_consumer(request)
        contributor = str(request.body.get("Contributor", ""))
        record = self.registry.get(contributor)
        key = self.escrow.key_for(consumer, record.host)
        if key is None:
            raise AuthorizationError(
                f"{consumer!r} has not added {contributor!r} to their account"
            )
        return self.client.with_key(key).post(
            f"https://{record.host}/api/query",
            {"Contributor": contributor, "Query": dict(request.body.get("Query", {}))},
        )
