"""Durable state for a remote data store service.

The segment store already persists wave segments through the embedded
database; a real deployment must also survive restarts without losing
privacy rules, labeled places, registered principals, or the audit trail
— losing a *rule* would silently widen sharing, the worst failure mode a
privacy system can have.  This module snapshots and restores the full
service state as JSON-lines files alongside the segment data.

Restore-order note: rules are loaded with listeners detached so that a
reload does not re-fire broker sync pushes for state the broker already
has.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exceptions import CorruptRecordError, SchemaError, StorageError
from repro.rules.parser import rules_to_json
from repro.server.audit import AuditRecord
from repro.storage.atomic import atomic_write_jsonl
from repro.util import jsonutil
from repro.util.geo import LabeledPlace


def _path(directory: str, host: str, kind: str) -> str:
    return os.path.join(directory, f"{host}.{kind}.jsonl")


def _write_lines(path: str, objects, *, faults=None) -> None:
    """Atomically replace ``path`` (temp + fsync + rename, never in place)."""
    atomic_write_jsonl(path, objects, faults=faults)


def _read_lines(path: str) -> list:
    """Parse a JSON-lines snapshot; a malformed line is an error, not a skip.

    Silently dropping a line here could drop a privacy *rule*, silently
    widening sharing.  Strict loads raise
    :class:`~repro.exceptions.CorruptRecordError` naming the file and
    line; the recovery path (:mod:`repro.storage.recovery`) instead
    quarantines bad lines and fails closed for rules.
    """
    if not os.path.exists(path):
        return []
    out = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(jsonutil.loads(line))
            except SchemaError as exc:
                raise CorruptRecordError(
                    f"{path}:{lineno}: corrupt snapshot line: {exc}"
                ) from exc
    return out


def save_service_state(service, directory: Optional[str] = None, *, faults=None) -> list:
    """Persist a DataStoreService's full state; returns written paths."""
    directory = directory or service.store.db.directory
    if directory is None:
        raise StorageError(
            f"store {service.host!r} has no persistence directory configured"
        )
    paths = service.store.save(faults=faults)

    rules_rows = []
    for contributor in service.rules.contributors():
        snapshot = service.rules.snapshot(contributor)
        rules_rows.append(snapshot.to_json())
    path = _path(directory, service.host, "rules")
    _write_lines(path, rules_rows, faults=faults)
    paths.append(path)

    places_rows = [
        {
            "Contributor": contributor,
            "Places": [p.to_json() for p in places.values()],
        }
        for contributor, places in sorted(service.places.items())
    ]
    path = _path(directory, service.host, "places")
    _write_lines(path, places_rows, faults=faults)
    paths.append(path)

    roles_rows = [
        {"Principal": principal, "Role": role}
        for principal, role in sorted(service.roles.items())
    ]
    path = _path(directory, service.host, "roles")
    _write_lines(path, roles_rows, faults=faults)
    paths.append(path)

    audit_rows = []
    for contributor in service.rules.contributors():
        audit_rows.extend(r.to_json() for r in service.audit.trail_of(contributor))
    path = _path(directory, service.host, "audit")
    _write_lines(path, audit_rows, faults=faults)
    paths.append(path)
    return paths


def load_service_state(service, directory: Optional[str] = None) -> dict:
    """Restore a DataStoreService's state; returns per-kind counts.

    Principals' API keys are *not* restored — keys are re-issued after a
    restart (a deliberate rotation; stale clients re-register through the
    broker escrow), matching the advice that key material should not sit
    in the same snapshot as the data it protects.
    """
    from repro.rules.rulestore import RuleSetSnapshot

    directory = directory or service.store.db.directory
    if directory is None:
        raise StorageError(
            f"store {service.host!r} has no persistence directory configured"
        )
    counts = {"segments": service.store.load(), "rules": 0, "places": 0, "roles": 0,
              "audit": 0}

    # Rules: restore without firing sync listeners (the broker already
    # knows this state).
    for obj in _read_lines(_path(directory, service.host, "rules")):
        snapshot = RuleSetSnapshot.from_json(obj)
        service.rules.register(snapshot.contributor)
        service.rules.restore(snapshot.contributor, snapshot.rules, snapshot.version)
        counts["rules"] += len(snapshot.rules)

    for obj in _read_lines(_path(directory, service.host, "places")):
        places = {
            place.label: place
            for place in (LabeledPlace.from_json(p) for p in obj.get("Places", []))
        }
        service.places[str(obj["Contributor"])] = places
        counts["places"] += len(places)

    for obj in _read_lines(_path(directory, service.host, "roles")):
        service.roles[str(obj["Principal"])] = str(obj["Role"])
        counts["roles"] += 1

    counts["audit"] = service.audit.restore(
        AuditRecord.from_json(obj)
        for obj in _read_lines(_path(directory, service.host, "audit"))
    )
    # Restored places/rules replace live state wholesale; decisions cached
    # against the pre-load state must not survive it.
    release_cache = getattr(service, "release_cache", None)
    if release_cache is not None:
        release_cache.invalidate_all("restore")
    return counts
