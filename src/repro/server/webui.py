"""Server-rendered web user interfaces (paper Fig. 3 and Section 5.4).

"We have designed a web-based user interface where the users can define
and manage privacy rules.  The user interface consists of standard HTML UI
components and Google Maps."  We render real HTML — forms with check
boxes, radio buttons, selects, text boxes — and a map placeholder div
where the Google Maps widget would mount.  Form submissions are translated
into the same Fig. 4 JSON rules the API accepts, so the web path and the
API path exercise one rule pipeline.

Web sessions use username/password login (distinct from API keys), per
Section 5.4.  Pages are served as ``{"Html": ...}`` bodies with a
``text/html`` content type through the simulated transport.
"""

from __future__ import annotations

import html as html_escape
from typing import Optional

from repro.datastore.query import DataQuery
from repro.exceptions import AuthorizationError, BadRequestError
from repro.net.http import Request, Response, html_response
from repro.rules.model import Rule
from repro.rules.parser import rule_from_json
from repro.sensors.channels import CHANNEL_GROUPS
from repro.sensors.contexts import CONTEXT_NAMES, CONTEXTS
from repro.util.timeutil import WEEKDAY_NAMES


def _esc(text: object) -> str:
    return html_escape.escape(str(text))


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{_esc(title)} - SensorSafe</title>"
        "</head><body>"
        f"<h1>{_esc(title)}</h1>{body}"
        "</body></html>"
    )


def _checkboxes(name: str, options, checked=()) -> str:
    parts = []
    for option in options:
        mark = " checked" if option in checked else ""
        parts.append(
            f'<label><input type="checkbox" name="{_esc(name)}" '
            f'value="{_esc(option)}"{mark}> {_esc(option)}</label>'
        )
    return "\n".join(parts)


def _select(name: str, options, selected: Optional[str] = None) -> str:
    rows = []
    for option in options:
        mark = " selected" if option == selected else ""
        rows.append(f'<option value="{_esc(option)}"{mark}>{_esc(option)}</option>')
    return f'<select name="{_esc(name)}">' + "".join(rows) + "</select>"


def render_rule_editor(contributor: str, rules, places) -> str:
    """The Fig. 3 page: existing rules plus the rule-creation form."""
    rule_rows = "".join(
        f"<tr><td><code>{_esc(r.rule_id)}</code></td>"
        f"<td>{_esc(r.describe())}</td>"
        f'<td><button name="remove" value="{_esc(r.rule_id)}">Remove</button></td></tr>'
        for r in rules
    )
    abstraction_selects = "".join(
        f"<li>{_esc(name)}: "
        + _select(f"abs_{name}", ("(unchanged)",) + spec.abstraction_levels)
        + "</li>"
        for name, spec in CONTEXTS.items()
    )
    body = f"""
<h2>Privacy rules for {_esc(contributor)}</h2>
<table border="1">
  <tr><th>Rule id</th><th>Summary</th><th></th></tr>
  {rule_rows or '<tr><td colspan="3">No rules defined; nothing is shared.</td></tr>'}
</table>
<h2>Create a privacy rule</h2>
<form method="post" action="/web/rules/submit">
  <fieldset><legend>Data consumer</legend>
    <input type="text" name="consumers" placeholder="user, group, or study names">
  </fieldset>
  <fieldset><legend>Location</legend>
    <div id="map" style="width:480px;height:320px;border:1px solid #888">
      [Google Maps region-selection widget]
    </div>
    {_checkboxes("location_labels", sorted(places))}
  </fieldset>
  <fieldset><legend>Time</legend>
    Days: {_checkboxes("days", WEEKDAY_NAMES)}<br>
    From <input type="text" name="time_from" placeholder="9:00am">
    to <input type="text" name="time_to" placeholder="6:00pm">
  </fieldset>
  <fieldset><legend>Sensor</legend>
    {_checkboxes("sensors", sorted(CHANNEL_GROUPS))}
  </fieldset>
  <fieldset><legend>Context</legend>
    {_checkboxes("contexts", CONTEXT_NAMES)}
  </fieldset>
  <fieldset><legend>Action</legend>
    <label><input type="radio" name="action" value="Allow" checked> Allow</label>
    <label><input type="radio" name="action" value="Deny"> Deny</label>
    <label><input type="radio" name="action" value="Abstraction"> Abstraction:</label>
    <ul>{abstraction_selects}</ul>
  </fieldset>
  <button type="submit">Save rule</button>
</form>
"""
    return _page("Privacy Rules", body)


def form_to_rule_json(form: dict) -> dict:
    """Translate the rule-editor form fields into Fig. 4 rule JSON."""
    obj: dict = {}
    consumers = [c.strip() for c in str(form.get("consumers", "")).split(",") if c.strip()]
    if consumers:
        obj["Consumer"] = consumers
    labels = list(form.get("location_labels", []))
    if labels:
        obj["LocationLabel"] = labels
    days = list(form.get("days", []))
    time_from = str(form.get("time_from", "")).strip()
    time_to = str(form.get("time_to", "")).strip()
    if days and time_from and time_to:
        obj["RepeatTime"] = {"Day": days, "HourMin": [time_from, time_to]}
    sensors = list(form.get("sensors", []))
    if sensors:
        obj["Sensor"] = sensors
    contexts = list(form.get("contexts", []))
    if contexts:
        obj["Context"] = contexts
    action = form.get("action", "Allow")
    if action == "Abstraction":
        levels = {
            key[4:]: value
            for key, value in form.items()
            if key.startswith("abs_") and value and value != "(unchanged)"
        }
        if not levels:
            raise BadRequestError("abstraction action needs at least one level")
        obj["Action"] = {"Abstraction": levels}
    elif action in ("Allow", "Deny"):
        obj["Action"] = action
    else:
        raise BadRequestError(f"unknown action selection: {action!r}")
    return obj


def render_data_view(contributor: str, segments) -> str:
    """The contributor's own-data review page ("Alice reviews her data")."""
    by_channel: dict = {}
    for segment in segments:
        for channel in segment.channels:
            entry = by_channel.setdefault(channel, {"segments": 0, "samples": 0})
            entry["segments"] += 1
            entry["samples"] += segment.n_samples
    rows = "".join(
        f"<tr><td>{_esc(ch)}</td><td>{info['segments']}</td><td>{info['samples']}</td></tr>"
        for ch, info in sorted(by_channel.items())
    )
    body = f"""
<h2>Data stored for {_esc(contributor)}</h2>
<table border="1">
  <tr><th>Channel</th><th>Wave segments</th><th>Samples</th></tr>
  {rows or '<tr><td colspan="3">No data uploaded yet.</td></tr>'}
</table>
"""
    return _page("My Data", body)


def render_search_page(matches=None) -> str:
    """The broker's contributor-search page."""
    result_rows = ""
    if matches is not None:
        result_rows = "<h2>Matches</h2><ul>" + "".join(
            f"<li>{_esc(m)}</li>" for m in matches
        ) + "</ul>" if matches else "<h2>Matches</h2><p>No contributors matched.</p>"
    body = f"""
<form method="post" action="/web/search">
  <fieldset><legend>Required sensors</legend>
    {_checkboxes("sensors", sorted(CHANNEL_GROUPS))}
  </fieldset>
  <fieldset><legend>Location label</legend>
    <input type="text" name="location_label" placeholder="work">
  </fieldset>
  <fieldset><legend>Time</legend>
    Days: {_checkboxes("days", WEEKDAY_NAMES)}
    From <input type="text" name="time_from"> to <input type="text" name="time_to">
  </fieldset>
  <button type="submit">Search contributors</button>
</form>
{result_rows}
"""
    return _page("Contributor Search", body)


def render_audit_view(contributor: str, records, summary) -> str:
    """The access-audit page: who took what from this store."""
    summary_rows = "".join(
        f"<tr><td>{_esc(principal)}</td><td>{info['accesses']}</td>"
        f"<td>{info['samples']}</td><td>{info['raw']}</td></tr>"
        for principal, info in sorted(summary.items())
    )
    detail_rows = "".join(
        f"<tr><td>{r.seq}</td><td>{_esc(r.principal)}</td>"
        f"<td>{r.pieces_released}</td><td>{r.samples_released}</td>"
        f"<td>{_esc(', '.join(r.labels_released) or '-')}</td>"
        f"<td>{_esc('; '.join(sorted(r.withheld)) or '-')}</td></tr>"
        for r in records
    )
    body = f"""
<h2>Access summary for {_esc(contributor)}</h2>
<table border="1">
  <tr><th>Consumer</th><th>Accesses</th><th>Samples taken</th><th>Raw reads</th></tr>
  {summary_rows or '<tr><td colspan="4">No accesses recorded.</td></tr>'}
</table>
<h2>Recent accesses</h2>
<table border="1">
  <tr><th>#</th><th>Principal</th><th>Pieces</th><th>Samples</th>
      <th>Labels released</th><th>Channels withheld</th></tr>
  {detail_rows or '<tr><td colspan="6">No accesses recorded.</td></tr>'}
</table>
"""
    return _page("Access Audit", body)


class DataStoreWebUI:
    """Web pages mounted on a remote data store service."""

    def __init__(self, service) -> None:
        self.service = service
        router = service.router
        router.add("POST", "/web/login", self._h_login)
        router.add("GET", "/web/rules/{token}", self._h_rules_page)
        router.add("POST", "/web/rules/submit", self._h_rules_submit)
        router.add("GET", "/web/data/{token}", self._h_data_page)
        router.add("GET", "/web/audit/{token}", self._h_audit_page)

    def _session_contributor(self, token: str) -> str:
        account = self.service.accounts.session_user(token)
        return account.username

    def _h_login(self, request: Request) -> dict:
        username = str(request.body.get("Username", ""))
        password = str(request.body.get("Password", ""))
        token = self.service.accounts.login(username, password)
        return {"Token": token}

    def _h_rules_page(self, request: Request, token: str) -> Response:
        contributor = self._session_contributor(token)
        rules = self.service.rules.rules_of(contributor)
        places = self.service.places.get(contributor, {})
        return html_response(render_rule_editor(contributor, rules, places))

    def _h_rules_submit(self, request: Request) -> dict:
        token = request.body.get("Token")
        contributor = self._session_contributor(token)
        rule_json = form_to_rule_json(dict(request.body.get("Form", {})))
        rule = rule_from_json(rule_json)
        self.service.rules.add(contributor, rule)
        return {"RuleId": rule.rule_id, "Rule": rule_json}

    def _h_data_page(self, request: Request, token: str) -> Response:
        contributor = self._session_contributor(token)
        segments = self.service.store.segments_of(contributor)
        return html_response(render_data_view(contributor, segments))

    def _h_audit_page(self, request: Request, token: str) -> Response:
        contributor = self._session_contributor(token)
        records = self.service.audit.trail_of(contributor, limit=50)
        summary = self.service.audit.summary(contributor)
        return html_response(render_audit_view(contributor, records, summary))


class BrokerWebUI:
    """Web pages mounted on the broker service."""

    def __init__(self, service) -> None:
        self.service = service
        router = service.router
        router.add("POST", "/web/login", self._h_login)
        router.add("GET", "/web/search/{token}", self._h_search_page)
        router.add("POST", "/web/search", self._h_search_submit)
        router.add("GET", "/web/contributors/{token}", self._h_contributors_page)
        router.add("POST", "/web/data", self._h_data_submit)

    def _h_login(self, request: Request) -> dict:
        username = str(request.body.get("Username", ""))
        password = str(request.body.get("Password", ""))
        token = self.service.accounts.login(username, password)
        return {"Token": token}

    def _h_search_page(self, request: Request, token: str) -> Response:
        self.service.accounts.session_user(token)
        return html_response(render_search_page())

    def _h_search_submit(self, request: Request) -> Response:
        from repro.broker.search import SearchCriteria

        token = request.body.get("Token")
        account = self.service.accounts.session_user(token)
        form = dict(request.body.get("Form", {}))
        criteria_json: dict = {"Consumer": account.username}
        sensors = list(form.get("sensors", []))
        if sensors:
            criteria_json["Sensor"] = sensors
        if form.get("location_label"):
            criteria_json["LocationLabel"] = str(form["location_label"])
        days = list(form.get("days", []))
        if days and form.get("time_from") and form.get("time_to"):
            criteria_json["RepeatTime"] = {
                "Day": days,
                "HourMin": [str(form["time_from"]), str(form["time_to"])],
            }
        criteria = SearchCriteria.from_json(criteria_json)
        matches = [r.name for r in self.service.search.search(criteria)]
        return html_response(render_search_page(matches))

    def _h_data_submit(self, request: Request) -> Response:
        """The broker's data-access page (Section 5.2): "The web interface
        provides query options such as location, time, and data channels".

        The query is proxied to the contributor's store with the
        consumer's escrowed key; the released pieces render as a table.
        """
        from repro.datastore.query import DataQuery
        from repro.rules.engine import ReleasedSegment
        from repro.util.timeutil import Interval

        token = request.body.get("Token")
        account = self.service.accounts.session_user(token)
        form = dict(request.body.get("Form", {}))
        contributor = str(form.get("contributor", ""))
        query_json: dict = {}
        channels = list(form.get("channels", []))
        if channels:
            query_json["Channels"] = channels
        if form.get("time_start") and form.get("time_end"):
            query_json["TimeRange"] = Interval(
                int(form["time_start"]), int(form["time_end"])
            ).to_json()
        DataQuery.from_json(query_json)  # validate before proxying
        record = self.service.registry.get(contributor)
        key = self.service.escrow.key_for(account.username, record.host)
        if key is None:
            raise AuthorizationError(
                f"{account.username!r} has not added {contributor!r} to their account"
            )
        body = self.service.client.with_key(key).post(
            f"https://{record.host}/api/query",
            {"Contributor": contributor, "Query": query_json},
        )
        released = [ReleasedSegment.from_json(r) for r in body.get("Released", [])]
        rows = "".join(
            f"<tr><td>{r.timestamp if r.timestamp is not None else '-'}</td>"
            f"<td>{_esc(', '.join(r.channels()) or '-')}</td>"
            f"<td>{r.n_samples}</td>"
            f"<td>{_esc(r.location)}</td>"
            f"<td>{_esc(', '.join(f'{k}={v}' for k, v in sorted(r.context_labels.items())) or '-')}</td></tr>"
            for r in released
        )
        html = _page(
            f"Data from {contributor}",
            '<table border="1"><tr><th>Timestamp</th><th>Channels</th>'
            "<th>Samples</th><th>Location</th><th>Context</th></tr>"
            + (rows or '<tr><td colspan="5">Nothing released.</td></tr>')
            + "</table>",
        )
        return html_response(html)

    def _h_contributors_page(self, request: Request, token: str) -> Response:
        self.service.accounts.session_user(token)
        rows = "".join(
            f"<tr><td>{_esc(r.name)}</td><td>{_esc(r.host)}</td>"
            f"<td>{_esc(r.institution)}</td><td>{r.rules_version}</td></tr>"
            for r in self.service.registry.all()
        )
        body = (
            '<table border="1"><tr><th>Contributor</th><th>Store</th>'
            "<th>Institution</th><th>Rules version</th></tr>" + rows + "</table>"
        )
        return html_response(_page("Data Contributors", body))
