"""The SensorSafe services: remote data stores and the broker.

Both services follow the layered design of the paper's Fig. 2: every
request passes the *user authentication* layer (API key for APIs, session
token for web pages) before reaching the *query/privacy processing* layer,
which consults the rule engine and the underlying database.
"""

from repro.server.datastore_service import DataStoreService
from repro.server.broker_service import BrokerService
from repro.server.audit import AuditLog, AuditRecord
from repro.server.persistence import load_service_state, save_service_state

__all__ = [
    "DataStoreService",
    "BrokerService",
    "AuditLog",
    "AuditRecord",
    "load_service_state",
    "save_service_state",
]
