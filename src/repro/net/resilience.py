"""Client-side resilience: retry with backoff, and circuit breaking.

Counterpart to :mod:`repro.net.faults`: the fault plan breaks the network,
this module teaches clients to survive it.  :class:`RetryPolicy` retries
*safe* failures — dropped requests
(:class:`~repro.exceptions.NetworkUnavailableError`, which by construction
never reached the host) and 5xx server errors — with capped exponential
backoff and deterministic jitter on the simulated clock.  A 4xx is never
retried: the request was delivered and rejected, and resending it cannot
change the answer.

:class:`CircuitBreaker` guards one host.  After ``failure_threshold``
consecutive failures it *opens* and sheds calls instantly
(:class:`~repro.exceptions.CircuitOpenError`) until ``reset_timeout_ms``
elapses on the clock; then it goes *half-open* and admits a single probe —
success closes the circuit, failure re-opens it for another timeout.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.net.http import Response

#: Server-side statuses considered transient and safe to retry.
RETRYABLE_STATUSES = (500, 502, 503, 504)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts=1`` disables retries entirely (the no-resilience
    baseline).  Delay before attempt ``k`` (1-based retries) is
    ``min(base * multiplier**(k-1), max) * (1 ± jitter)``, where the jitter
    fraction is hashed from ``(key, k)`` so schedules are reproducible.
    """

    max_attempts: int = 4
    base_delay_ms: float = 100.0
    max_delay_ms: float = 5_000.0
    multiplier: float = 2.0
    jitter: float = 0.1
    retry_statuses: tuple = RETRYABLE_STATUSES

    def delay_ms(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_ms * self.multiplier ** (attempt - 1), self.max_delay_ms
        )
        if self.jitter:
            digest = hashlib.sha256(f"{key}\x1f{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay

    def retryable_status(self, status: int) -> bool:
        return status in self.retry_statuses

    def should_retry_response(self, response: Response) -> bool:
        """May this response be retried?  Never a 4xx (delivered + rejected)."""
        return self.retryable_status(response.status)


#: A policy that never retries — the explicit no-resilience baseline.
NO_RETRY = RetryPolicy(max_attempts=1)


class RetryBudget:
    """Token bucket that keeps retries from amplifying an outage.

    Successful calls *earn* fractional tokens (``earn_ratio`` per
    success, ~10%); each retry *spends* one whole token.  During an
    outage the bucket drains after roughly ``capacity`` retries and stays
    empty until real successes refill it — so a fleet of clients adds at
    most ~``earn_ratio`` extra load on a struggling host instead of
    multiplying every failure by ``max_attempts``.

    Shared across :meth:`~repro.net.client.HttpClient.with_key` copies
    (like the breaker map): the budget belongs to the principal, not the
    key in hand.  State is two floats; the simulated network is
    synchronous, so no locking.
    """

    def __init__(self, capacity: float = 10.0, earn_ratio: float = 0.1):
        self.capacity = float(capacity)
        self.earn_ratio = float(earn_ratio)
        self.tokens = float(capacity)  # start full: cold-start retries allowed
        #: lifetime counts, for benchmark reporting
        self.spent = 0
        self.exhausted = 0

    def deposit(self) -> None:
        """A call succeeded: earn a fractional retry token."""
        self.tokens = min(self.capacity, self.tokens + self.earn_ratio)

    def take(self) -> bool:
        """Spend one token for a retry; False when the budget is exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


class CircuitBreaker:
    """Failure-counting breaker for one host, on a simulated clock.

    ``on_state_change(old_state, new_state)`` — when provided — fires on
    every transition; :class:`~repro.net.client.HttpClient` wires it to
    the deployment's metrics registry so breaker trips show up in
    ``/api/metrics`` and the obs report.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_ms: int = 30_000,
        *,
        on_state_change=None,
    ):
        self.failure_threshold = failure_threshold
        self.reset_timeout_ms = reset_timeout_ms
        self.state = CLOSED
        self.failures = 0  # consecutive failures while closed
        self.opened_at_ms = 0
        self.on_state_change = on_state_change
        #: lifetime counters, for benchmark reporting
        self.times_opened = 0
        self.calls_shed = 0

    def _transition(self, new_state: str) -> None:
        old_state, self.state = self.state, new_state
        if old_state != new_state and self.on_state_change is not None:
            self.on_state_change(old_state, new_state)

    def allow(self, now_ms: int) -> bool:
        """May a call proceed now?  Transitions open → half-open on timeout."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_ms - self.opened_at_ms >= self.reset_timeout_ms:
                self._transition(HALF_OPEN)
                return True  # the single probe
            self.calls_shed += 1
            return False
        # Half-open: a probe is already in flight; shed concurrent calls.
        # (The simulated network is synchronous, so this arm only triggers
        # if a caller ignores allow()'s contract.)
        self.calls_shed += 1
        return False

    def record_success(self) -> None:
        self._transition(CLOSED)
        self.failures = 0

    def record_backpressure(self) -> None:
        """An explicit overload shed answered: the host is alive, just busy.

        Counting a typed 503 (:class:`~repro.exceptions.OverloadedError`)
        as a *failure* makes brownout trip breakers, which sheds all
        traffic, which ends the brownout, which closes the breaker, which
        restores the flood — a traffic oscillation.  Backpressure instead
        clears the streak, and a half-open probe that gets backpressure
        *closes* the circuit: the host answered, which is exactly what
        the probe was asking.
        """
        if self.state != CLOSED:
            self._transition(CLOSED)
        self.failures = 0

    def record_failure(self, now_ms: int) -> None:
        if self.state == HALF_OPEN:
            self._open(now_ms)  # failed probe: straight back to open
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._open(now_ms)

    def _open(self, now_ms: int) -> None:
        self._transition(OPEN)
        self.opened_at_ms = now_ms
        self.times_opened += 1
        self.failures = 0
