"""Deterministic fault injection for the simulated network.

The seed network delivers every request perfectly, so none of the paper's
availability claims (store↔broker rule sync surviving outages, phone→store
uploads surviving connectivity loss) are actually exercised.  This module
adds a :class:`FaultPlan` that :meth:`~repro.net.transport.Network.request`
consults before dispatch.  A plan is a list of rules matched against
``(method, host, path)`` plus named partitions matched against the caller
and target endpoints.  Rules can:

* return an **error response** (500/503) instead of dispatching;
* **drop** the request entirely, raising
  :class:`~repro.exceptions.NetworkUnavailableError`;
* inject **latency** on the simulated clock;
* be **flaky** — fail the first N matching requests, then recover;
* be confined to a **time window** on the simulated clock (outages).

Every probabilistic decision is derived by hashing ``(seed, rule index,
per-rule hit counter)``, never from global randomness, so identical seeds
produce byte-identical fault schedules regardless of what else the process
does — the property benchmark C7 asserts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import NetworkUnavailableError
from repro.net.http import Response, json_response


class SimClock:
    """A simulated millisecond clock shared by the network and backoff.

    Latency injection and retry backoff *advance* this clock instead of
    sleeping, so fault scenarios spanning simulated minutes run in
    microseconds and stay deterministic.
    """

    def __init__(self, start_ms: int = 0):
        self._now_ms = int(start_ms)

    def now_ms(self) -> int:
        return self._now_ms

    def advance(self, ms: float) -> int:
        """Move time forward; returns the new now."""
        if ms < 0:
            raise ValueError(f"cannot advance the clock backwards: {ms}")
        self._now_ms += int(ms)
        return self._now_ms

    # Backoff code reads like real code: ``clock.sleep(delay_ms)``.
    sleep = advance


#: Fault kinds a rule can inject.
DROP = "drop"
ERROR = "error"
LATENCY = "latency"
FLAKY = "flaky"
#: Post-dispatch fault: the handler RAN (server-side effects committed)
#: but the response is replaced with an error — the ack was lost in
#: transit.  This is the fault class that turns naive client retries into
#: duplicate uploads, which the store-boundary dedupe must absorb.
RESPONSE_ERROR = "response_error"


@dataclass
class FaultRule:
    """One match-and-inject rule of a :class:`FaultPlan`."""

    kind: str
    host: str = "*"  # exact host name, or "*" for any
    path_prefix: str = ""  # "" matches every path
    method: Optional[str] = None  # None matches every method
    rate: float = 1.0  # probability a matching request is affected
    status: int = 503  # for ERROR rules
    latency_ms: int = 0  # for LATENCY rules
    fail_first: int = 0  # for FLAKY rules: fail this many, then recover
    from_ms: Optional[int] = None  # active window on the simulated clock
    until_ms: Optional[int] = None
    hits: int = 0  # matching requests seen (drives flaky + hashing)

    def matches(self, method: str, host: str, path: str, now_ms: int) -> bool:
        if self.host != "*" and self.host != host:
            return False
        if self.method is not None and self.method != method:
            return False
        if not path.startswith(self.path_prefix):
            return False
        if self.from_ms is not None and now_ms < self.from_ms:
            return False
        if self.until_ms is not None and now_ms >= self.until_ms:
            return False
        return True


@dataclass
class FaultEvent:
    """One injected (or passed-through) decision, for the schedule log."""

    seq: int
    now_ms: int
    client: str
    method: str
    host: str
    path: str
    kind: str  # rule kind, or "partition"
    outcome: str  # "drop" | "error:<status>" | "latency:<ms>" | "pass"

    def line(self) -> str:
        return (
            f"{self.seq}\t{self.now_ms}\t{self.client}\t{self.method}\t"
            f"{self.host}{self.path}\t{self.kind}\t{self.outcome}"
        )


class FaultPlan:
    """A seeded, reproducible schedule of network faults.

    Install on a network with
    :meth:`~repro.net.transport.Network.install_faults`; build with the
    ``add_*`` methods::

        plan = FaultPlan(seed=7)
        plan.add_drop("alice-store", path="/api/upload_packets", rate=0.3)
        plan.add_outage("alice-store", start_ms=10_000, duration_ms=60_000)
        plan.add_partition("split", {"broker"}, {"lab-store"})
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        #: name -> (side_a, side_b); endpoints across sides cannot talk.
        self.partitions: dict[str, tuple[frozenset, frozenset]] = {}
        self.log: list[FaultEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def add_error(
        self,
        host: str = "*",
        *,
        path: str = "",
        method: Optional[str] = None,
        status: int = 503,
        rate: float = 1.0,
    ) -> FaultRule:
        """Matching requests receive an error response instead of service."""
        return self.add_rule(
            FaultRule(ERROR, host, path, method, rate=rate, status=status)
        )

    def add_drop(
        self,
        host: str = "*",
        *,
        path: str = "",
        method: Optional[str] = None,
        rate: float = 1.0,
    ) -> FaultRule:
        """Matching requests vanish (``NetworkUnavailableError``)."""
        return self.add_rule(FaultRule(DROP, host, path, method, rate=rate))

    def add_latency(
        self, host: str = "*", latency_ms: int = 100, *, path: str = ""
    ) -> FaultRule:
        """Matching requests advance the simulated clock before dispatch."""
        return self.add_rule(FaultRule(LATENCY, host, path, latency_ms=latency_ms))

    def add_flaky(self, host: str = "*", fail_first: int = 3, *, path: str = "") -> FaultRule:
        """Fail the first N matching requests (drops), then recover."""
        return self.add_rule(FaultRule(FLAKY, host, path, fail_first=fail_first))

    def add_outage(self, host: str, *, start_ms: int, duration_ms: int) -> FaultRule:
        """Drop everything to ``host`` during a simulated-clock window."""
        return self.add_rule(
            FaultRule(DROP, host, from_ms=start_ms, until_ms=start_ms + duration_ms)
        )

    def add_response_error(
        self,
        host: str = "*",
        *,
        path: str = "",
        method: Optional[str] = None,
        status: int = 503,
        fail_first: int = 0,
        rate: float = 1.0,
    ) -> FaultRule:
        """The handler runs, but the client receives an error instead.

        With ``fail_first`` > 0 the rule acts flaky: the first N matching
        responses are lost, then delivery recovers.  Otherwise ``rate``
        governs each response independently.
        """
        return self.add_rule(
            FaultRule(
                RESPONSE_ERROR,
                host,
                path,
                method,
                rate=rate,
                status=status,
                fail_first=fail_first,
            )
        )

    def add_partition(self, name: str, side_a, side_b) -> None:
        """Endpoints in ``side_a`` cannot reach ``side_b`` (nor vice versa).

        Sides are sets of endpoint names: registered hosts *or* client
        names (e.g. ``"alice-phone"``), since phones are callers that never
        mount a router.
        """
        self.partitions[name] = (frozenset(side_a), frozenset(side_b))

    def heal(self, name: str) -> None:
        """Remove a named partition (no-op if already healed)."""
        self.partitions.pop(name, None)

    # ------------------------------------------------------------------
    # Decision making (called by Network.request)
    # ------------------------------------------------------------------

    def _roll(self, rule_index: int, hit: int) -> float:
        """A deterministic uniform draw for one (rule, hit) pair."""
        material = f"{self.seed}\x1f{rule_index}\x1f{hit}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _record(self, now, client, method, host, path, kind, outcome) -> None:
        self.log.append(
            FaultEvent(self._seq, now, client, method, host, path, kind, outcome)
        )
        self._seq += 1

    def apply(
        self, method: str, host: str, path: str, client: str, clock: SimClock
    ) -> Optional[Response]:
        """Decide this request's fate.

        Returns an injected error :class:`Response`, raises
        :class:`NetworkUnavailableError` for drops/partitions, or returns
        ``None`` to let the request through (latency rules may have
        advanced the clock either way).
        """
        now = clock.now_ms()
        for name, (side_a, side_b) in sorted(self.partitions.items()):
            if (client in side_a and host in side_b) or (
                client in side_b and host in side_a
            ):
                self._record(now, client, method, host, path, "partition", f"drop:{name}")
                raise NetworkUnavailableError(
                    f"partition {name!r} separates {client!r} from {host!r}"
                )
        for index, rule in enumerate(self.rules):
            if rule.kind == RESPONSE_ERROR:
                continue  # post-dispatch rules are consulted by apply_response
            if not rule.matches(method, host, path, now):
                continue
            hit = rule.hits
            rule.hits += 1
            if rule.kind == LATENCY:
                clock.advance(rule.latency_ms)
                now = clock.now_ms()
                self._record(
                    now, client, method, host, path, LATENCY, f"latency:{rule.latency_ms}"
                )
                continue  # latency composes with whatever rule fires next
            if rule.kind == FLAKY:
                if hit < rule.fail_first:
                    self._record(now, client, method, host, path, FLAKY, "drop")
                    raise NetworkUnavailableError(
                        f"flaky host {host!r} failing request {hit + 1}/{rule.fail_first}"
                    )
                continue
            if self._roll(index, hit) >= rule.rate:
                self._record(now, client, method, host, path, rule.kind, "pass")
                continue
            if rule.kind == DROP:
                self._record(now, client, method, host, path, DROP, "drop")
                raise NetworkUnavailableError(
                    f"request to {host!r} dropped by fault plan"
                )
            if rule.kind == ERROR:
                self._record(
                    now, client, method, host, path, ERROR, f"error:{rule.status}"
                )
                return json_response(
                    {"Error": f"injected fault ({rule.status})"}, status=rule.status
                )
        return None

    def apply_response(
        self, method: str, host: str, path: str, client: str, clock: SimClock
    ) -> Optional[Response]:
        """Decide a *response's* fate, after the handler has already run.

        Returns an injected error :class:`Response` that replaces the real
        one (the server committed; the client never learns it), or ``None``
        to deliver the genuine response.
        """
        now = clock.now_ms()
        for index, rule in enumerate(self.rules):
            if rule.kind != RESPONSE_ERROR:
                continue
            if not rule.matches(method, host, path, now):
                continue
            hit = rule.hits
            rule.hits += 1
            if rule.fail_first:
                if hit >= rule.fail_first:
                    self._record(now, client, method, host, path, rule.kind, "pass")
                    continue
            elif self._roll(index, hit) >= rule.rate:
                self._record(now, client, method, host, path, rule.kind, "pass")
                continue
            self._record(
                now, client, method, host, path, rule.kind, f"error:{rule.status}"
            )
            return json_response(
                {"Error": f"response lost in transit ({rule.status})"},
                status=rule.status,
            )
        return None

    # ------------------------------------------------------------------
    # Reproducibility instrument
    # ------------------------------------------------------------------

    def schedule_bytes(self) -> bytes:
        """The full decision log, canonically serialized.

        Two runs with the same seed and workload must produce identical
        bytes — benchmark C7's reproducibility assertion.
        """
        return "\n".join(event.line() for event in self.log).encode("utf-8")
