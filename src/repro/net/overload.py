"""Server-side overload control: admission, adaptive concurrency, brownout.

PR 1's resilience layer protects *clients* (retries, breakers); this
module protects *servers* from the load those very retries generate — the
classic metastable retry-storm setup.  Overload here is a privacy
property, not just an availability one: a loaded store must degrade
**fail-closed**, shedding work with an explicit typed 503
(:class:`~repro.exceptions.OverloadedError`) before any rule evaluation
runs — never a hurried or partial release.

Three cooperating pieces, wired into a service's
:class:`~repro.net.http.Router` via :meth:`AdmissionController.attach`:

* **Priority classes** — every route maps to one of six classes, shed in
  reverse priority order: control-plane rule mutations > replication
  frames > uploads > queries > aggregates > metrics scrapes.  Each class
  has a *queue budget* (how much backlog it tolerates before shedding)
  and a *limit fraction* (how much of the adaptive concurrency limit it
  may consume), which together implement brownout: as backlog grows,
  scrapes go dark first, then aggregates, then cold (cache-miss)
  queries — while cached releases keep serving and uploads and rule
  mutations are protected longest.

* **Virtual backlog** — the simulated network dispatches synchronously,
  so server work is modeled as a serial queue: each admitted request
  extends ``busy_until_ms`` by its class's service cost (simulated ms),
  and the queue wait seen at arrival is ``busy_until - now``.  The
  controller never advances the shared :class:`~repro.net.faults.SimClock`
  — offered load is whatever the workload drives between clock ticks,
  which is exactly what lets a benchmark offer 10× capacity.  Shedding is
  cheap by construction: a rejected request adds no work.

* **LIFO-with-deadline rejection** — clients stamp their remaining
  budget into the ``X-Deadline-Ms`` header; a request whose budget is
  smaller than the current queue wait is rejected with a typed 504
  (:class:`~repro.exceptions.DeadlineExpiredError`) *before* touching
  the rule engine.  In a synchronous simulation this arrival-time check
  is equivalent to LIFO service discarding expired work at dequeue: work
  whose caller already gave up is never performed.

The :class:`AdaptiveConcurrencyLimiter` tracks capacity gradient-style
(AIMD on observed latency vs a moving minimum) so the admission limit
follows the machine instead of a hand-tuned constant.

Modes: ``"observe"`` (the default everywhere) accounts and reports
would-shed decisions but admits everything — existing workloads see zero
behavior change; ``"enforce"`` sheds; ``"off"`` skips accounting too.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import DeadlineExpiredError, OverloadedError
from repro.net.http import Request, Response, Router

MODE_OFF = "off"
MODE_OBSERVE = "observe"
MODE_ENFORCE = "enforce"
MODES = (MODE_OFF, MODE_OBSERVE, MODE_ENFORCE)

#: Priority classes, highest priority (shed last) first.
CLASS_CONTROL = "control"
CLASS_REPLICATION = "replication"
CLASS_UPLOAD = "upload"
CLASS_QUERY = "query"
CLASS_AGGREGATE = "aggregate"
CLASS_SCRAPE = "scrape"

#: Shed-order reference (documentation + brownout level computation):
#: index 0 sheds first under pressure, the last entry is protected longest.
BROWNOUT_ORDER = (
    CLASS_SCRAPE,
    CLASS_AGGREGATE,
    CLASS_QUERY,
    CLASS_UPLOAD,
    CLASS_REPLICATION,
    CLASS_CONTROL,
)

#: Data-plane classes counted by the goodput SLO.  Scrapes are excluded:
#: shedding telemetry reads under pressure is the design, not lost goodput.
GOODPUT_CLASSES = (CLASS_UPLOAD, CLASS_QUERY, CLASS_AGGREGATE, CLASS_REPLICATION)

#: Route -> class for :class:`~repro.server.datastore_service.DataStoreService`.
STORE_ROUTE_CLASSES = {
    "POST /api/register": CLASS_CONTROL,
    "POST /api/rules/list": CLASS_CONTROL,
    "POST /api/rules/add": CLASS_CONTROL,
    "POST /api/rules/remove": CLASS_CONTROL,
    "POST /api/rules/replace": CLASS_CONTROL,
    "POST /api/rules/download": CLASS_CONTROL,
    "POST /api/places/set": CLASS_CONTROL,
    "POST /api/places/list": CLASS_CONTROL,
    "POST /api/profile": CLASS_CONTROL,
    "POST /api/profiles": CLASS_CONTROL,
    "POST /api/migrate/export": CLASS_REPLICATION,
    "POST /api/migrate/install": CLASS_REPLICATION,
    "POST /api/migrate/fence": CLASS_CONTROL,
    "POST /api/migrate/complete": CLASS_CONTROL,
    "POST /api/membership/set": CLASS_CONTROL,
    "POST /api/recovery": CLASS_CONTROL,
    "POST /api/health": CLASS_CONTROL,
    "POST /api/promote": CLASS_CONTROL,
    "POST /api/demote": CLASS_CONTROL,
    "POST /api/replicate/append": CLASS_REPLICATION,
    "POST /api/replicate/status": CLASS_REPLICATION,
    "POST /api/upload": CLASS_UPLOAD,
    "POST /api/upload_packets": CLASS_UPLOAD,
    "POST /api/flush": CLASS_UPLOAD,
    "POST /api/delete": CLASS_UPLOAD,
    "POST /api/query": CLASS_QUERY,
    "POST /api/audit/list": CLASS_QUERY,
    "POST /api/audit/summary": CLASS_QUERY,
    "POST /api/aggregate": CLASS_AGGREGATE,
    "POST /api/stats": CLASS_SCRAPE,
    "GET /api/metrics": CLASS_SCRAPE,
}

#: Route -> class for :class:`~repro.server.broker_service.BrokerService`.
BROKER_ROUTE_CLASSES = {
    "POST /api/register_consumer": CLASS_CONTROL,
    "POST /api/contributors/list": CLASS_CONTROL,
    "POST /api/contributors/add": CLASS_CONTROL,
    "POST /api/keys": CLASS_CONTROL,
    "POST /api/lists/save": CLASS_CONTROL,
    "POST /api/lists/get": CLASS_CONTROL,
    "POST /api/studies/create": CLASS_CONTROL,
    "POST /api/studies/join": CLASS_CONTROL,
    "POST /api/sync": CLASS_REPLICATION,
    "POST /api/replicas/status": CLASS_CONTROL,
    "POST /api/route": CLASS_CONTROL,
    "POST /api/shards/status": CLASS_CONTROL,
    "POST /api/search": CLASS_QUERY,
    "POST /api/data": CLASS_QUERY,
    "GET /api/metrics": CLASS_SCRAPE,
    "GET /api/fleet/metrics": CLASS_SCRAPE,
}


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of one host's admission controller.

    ``service_ms`` is the virtual serial-work cost one admitted request of
    each class adds to the backlog; ``queue_budget_ms`` is how much
    backlog a class tolerates at arrival before it sheds — the brownout
    ladder *is* this table (scrape's budget < aggregate's < cold query's
    < …).  ``limit_fraction`` caps how much of the adaptive concurrency
    limit each class may fill, so low-priority floods cannot starve
    control-plane work even before the queue budgets bite.
    """

    mode: str = MODE_OBSERVE
    service_ms: dict = field(default_factory=lambda: {
        CLASS_CONTROL: 2.0,
        CLASS_REPLICATION: 2.0,
        CLASS_UPLOAD: 4.0,
        CLASS_QUERY: 5.0,
        CLASS_AGGREGATE: 8.0,
        CLASS_SCRAPE: 1.0,
    })
    #: Virtual cost of a query that will be served from the release cache
    #: (brownout keeps serving these after cold queries shed).
    cached_query_ms: float = 1.0
    queue_budget_ms: dict = field(default_factory=lambda: {
        CLASS_CONTROL: 2_000.0,
        CLASS_REPLICATION: 1_500.0,
        CLASS_UPLOAD: 1_000.0,
        CLASS_QUERY: 400.0,
        CLASS_AGGREGATE: 200.0,
        CLASS_SCRAPE: 100.0,
    })
    #: Backlog a *cached* query tolerates (between cold queries and uploads).
    cached_query_budget_ms: float = 750.0
    limit_fraction: dict = field(default_factory=lambda: {
        CLASS_CONTROL: 1.0,
        CLASS_REPLICATION: 0.9,
        CLASS_UPLOAD: 0.8,
        CLASS_QUERY: 0.6,
        CLASS_AGGREGATE: 0.4,
        CLASS_SCRAPE: 0.2,
    })
    #: Floor on the Retry-After hint attached to sheds.
    min_retry_after_ms: int = 250
    #: Cap on the pending-entry ledger: observe-mode workloads that never
    #: advance the clock must not grow unbounded accounting state.
    max_pending: int = 4096

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown overload mode {self.mode!r}")

    def service_cost(self, cls: str, cached: bool) -> float:
        if cached and cls == CLASS_QUERY:
            return self.cached_query_ms
        return self.service_ms.get(cls, self.service_ms[CLASS_QUERY])

    def queue_budget(self, cls: str, cached: bool) -> float:
        if cached and cls == CLASS_QUERY:
            return self.cached_query_budget_ms
        return self.queue_budget_ms.get(cls, self.queue_budget_ms[CLASS_QUERY])


class AdaptiveConcurrencyLimiter:
    """Gradient-style AIMD concurrency limit for one host.

    Tracks a moving minimum of observed request latency (queue wait +
    service) over a sliding sample window; latencies within ``tolerance``
    of that minimum grow the limit additively (+1), latencies beyond it
    shrink it multiplicatively (×``decrease``).  The moving minimum is
    re-seeded every ``window`` samples so a long-gone congestion episode
    cannot pin the baseline forever.

    In the virtual-backlog model, "in flight" is the whole pending queue,
    so the limit is an adaptive *queue-depth* cap in request slots.  Its
    bounds sit above the per-class queue budgets at baseline — static
    budgets are the first line of brownout — and multiplicative decrease
    is rate-limited to once per ``cooldown_ms`` of simulated time, so the
    limit tightens under *sustained* congestion (the gradient signal)
    rather than collapsing inside a single instantaneous burst.
    """

    def __init__(
        self,
        *,
        min_limit: int = 64,
        max_limit: int = 4096,
        initial: int = 512,
        tolerance: float = 2.0,
        decrease: float = 0.9,
        window: int = 500,
        cooldown_ms: float = 100.0,
    ):
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.limit = float(initial)
        self.tolerance = tolerance
        self.decrease = decrease
        self.window = int(window)
        self.cooldown_ms = float(cooldown_ms)
        self._min_rtt = float("inf")
        self._since_reset = 0
        self._last_decrease_ms: Optional[float] = None

    def observe(self, rtt_ms: float, now_ms: Optional[float] = None) -> None:
        """Feed one admitted request's latency; adapt the limit.

        ``now_ms`` (the simulated clock) arms the decrease cooldown;
        without it every congested sample decays the limit (the direct
        unit-test path).
        """
        self._since_reset += 1
        if self._since_reset > self.window:
            # Re-seed the baseline from current conditions.
            self._min_rtt = rtt_ms
            self._since_reset = 1
        elif rtt_ms < self._min_rtt:
            self._min_rtt = rtt_ms
        if rtt_ms <= max(self._min_rtt, 1e-9) * self.tolerance:
            self.limit = min(self.max_limit, self.limit + 1.0)
            return
        if now_ms is not None and self._last_decrease_ms is not None:
            if now_ms - self._last_decrease_ms < self.cooldown_ms:
                return  # one multiplicative decrease per cooldown window
        self._last_decrease_ms = now_ms
        self.limit = max(self.min_limit, self.limit * self.decrease)

    @property
    def min_rtt_ms(self) -> float:
        """Current moving-minimum latency (inf before the first sample)."""
        return self._min_rtt


class AdmissionController:
    """Admission control + brownout for one host's router.

    Construct with the host's route->class table (and, for stores, a
    ``cache_probe`` that predicts whether a query would be served from
    the release cache) and :meth:`attach` it to the service's router: the
    gate then runs before every handler and the completion hook after.
    """

    def __init__(
        self,
        host: str,
        network,
        *,
        mode: str = MODE_OBSERVE,
        config: Optional[OverloadConfig] = None,
        classes: Optional[dict] = None,
        default_class: str = CLASS_QUERY,
        cache_probe: Optional[Callable[[Request], bool]] = None,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
    ):
        if mode not in MODES:
            raise ValueError(f"unknown overload mode {mode!r}")
        self.host = host
        self.network = network
        self.mode = mode
        self.config = config or OverloadConfig(mode=mode)
        self.classes = dict(classes or {})
        self.default_class = default_class
        self.cache_probe = cache_probe
        self.limiter = limiter or AdaptiveConcurrencyLimiter()
        self._clock = network.clock
        #: end of the virtual serial work queue, in simulated ms.
        self.busy_until_ms = 0.0
        #: (virtual finish ms, class) of admitted-but-unfinished requests.
        self._pending: deque = deque()
        #: benchmark/test probes: the last admitted request's virtual
        #: queue wait and total latency (safe: dispatch is synchronous).
        self.last_queue_ms = 0.0
        self.last_rtt_ms = 0.0
        obs = network.obs
        self.obs = obs if obs is not None and obs.enabled else None
        self._c_requests: dict = {}
        self._c_served: dict = {}
        self._c_shed: dict = {}
        self._c_would_shed: dict = {}
        self._h_queue: dict = {}
        if self.obs is not None:
            m = self.obs.metrics
            m.gauge(
                "admission_queue_depth",
                callback=lambda: self.inflight(),
                host=host,
            )
            m.gauge(
                "admission_queue_wait_ms",
                callback=lambda: self.queue_ms(),
                host=host,
            )
            m.gauge(
                "concurrency_limit",
                callback=lambda: self.limiter.limit,
                host=host,
            )
            m.gauge(
                "admission_brownout_level",
                callback=lambda: self.brownout_level(),
                host=host,
            )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, router: Router) -> None:
        """Install this controller as the router's admission gate."""
        router.gate = self.gate
        router.gate_done = self.gate_done

    def classify(self, method: str, path: str) -> str:
        """The priority class of one request (exact-route table lookup)."""
        return self.classes.get(f"{method} {path}", self.default_class)

    # ------------------------------------------------------------------
    # State probes
    # ------------------------------------------------------------------

    def queue_ms(self, now_ms: Optional[float] = None) -> float:
        """Current virtual backlog: the wait an arriving request sees."""
        now = self._clock.now_ms() if now_ms is None else now_ms
        return max(0.0, self.busy_until_ms - now)

    def inflight(self, now_ms: Optional[float] = None) -> int:
        """Admitted requests whose virtual finish time has not passed."""
        now = self._clock.now_ms() if now_ms is None else now_ms
        pending = self._pending
        while pending and pending[0][0] <= now:
            pending.popleft()
        return len(pending)

    def brownout_level(self) -> int:
        """How deep the brownout is: the count of classes currently shedding.

        0 means everything is admitted; 1 means scrapes shed; 2 adds
        aggregates; 3 adds cold queries; and so on up the priority ladder.
        Derived purely from the current backlog vs the queue budgets, so
        the gauge is meaningful in observe mode too.
        """
        backlog = self.queue_ms()
        level = 0
        for cls in BROWNOUT_ORDER:
            if backlog > self.config.queue_budget(cls, cached=False):
                level += 1
            else:
                break
        return level

    # ------------------------------------------------------------------
    # Metric binding (lazy per class; labels via **kwargs because
    # ``class`` is a Python keyword)
    # ------------------------------------------------------------------

    def _requests_ctr(self, cls: str):
        ctr = self._c_requests.get(cls)
        if ctr is None and self.obs is not None:
            ctr = self._c_requests[cls] = self.obs.metrics.counter(
                "admission_requests_total", **{"host": self.host, "class": cls}
            )
        return ctr

    def _served_ctr(self, cls: str):
        ctr = self._c_served.get(cls)
        if ctr is None and self.obs is not None:
            ctr = self._c_served[cls] = self.obs.metrics.counter(
                "admission_served_total", **{"host": self.host, "class": cls}
            )
        return ctr

    def _shed_ctr(self, cls: str, reason: str):
        ctr = self._c_shed.get((cls, reason))
        if ctr is None and self.obs is not None:
            ctr = self._c_shed[(cls, reason)] = self.obs.metrics.counter(
                "admission_shed_total",
                **{"host": self.host, "class": cls, "reason": reason},
            )
        return ctr

    def _would_shed_ctr(self, cls: str, reason: str):
        ctr = self._c_would_shed.get((cls, reason))
        if ctr is None and self.obs is not None:
            ctr = self._c_would_shed[(cls, reason)] = self.obs.metrics.counter(
                "admission_would_shed_total",
                **{"host": self.host, "class": cls, "reason": reason},
            )
        return ctr

    def _queue_hist(self, cls: str):
        hist = self._h_queue.get(cls)
        if hist is None and self.obs is not None:
            hist = self._h_queue[cls] = self.obs.metrics.histogram(
                "admission_queue_ms", **{"host": self.host, "class": cls}
            )
        return hist

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    @staticmethod
    def _deadline_remaining(request: Request) -> Optional[float]:
        raw = request.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            return float(raw)
        except (TypeError, ValueError):
            return None

    def _retry_after(self, queue_ms: float, budget: float) -> int:
        """How long until the backlog could drain under this class's budget."""
        return int(max(self.config.min_retry_after_ms, queue_ms - budget))

    def gate(self, request: Request):
        """Admission decision for one request; raises on shed (enforce).

        Returns an opaque ticket handed back to :meth:`gate_done`, or
        ``None`` when the controller is off.
        """
        if self.mode == MODE_OFF:
            return None
        cfg = self.config
        now = self._clock.now_ms()
        cls = self.classify(request.method, request.path)
        cached = bool(
            cls == CLASS_QUERY
            and self.cache_probe is not None
            and self.cache_probe(request)
        )
        queue_ms = self.queue_ms(now)
        ctr = self._requests_ctr(cls)
        if ctr is not None:
            ctr.inc()

        shed: Optional[tuple] = None  # (reason, exception)
        remaining = self._deadline_remaining(request)
        budget = cfg.queue_budget(cls, cached)
        if remaining is not None and remaining <= queue_ms:
            # The caller's budget dies in our queue: reject before the
            # rule engine sees it (LIFO-with-deadline equivalent).
            shed = (
                "deadline",
                DeadlineExpiredError(
                    f"{self.host!r} queue wait {queue_ms:.0f}ms exceeds the "
                    f"caller's remaining deadline of {remaining:.0f}ms"
                ),
            )
        elif queue_ms > budget:
            shed = (
                "queue",
                OverloadedError(
                    f"{self.host!r} is overloaded: {queue_ms:.0f}ms of backlog "
                    f"exceeds the {budget:.0f}ms budget of class {cls!r}",
                    retry_after_ms=self._retry_after(queue_ms, budget),
                ),
            )
        elif self.inflight(now) >= self.limiter.limit * cfg.limit_fraction.get(cls, 1.0):
            shed = (
                "limit",
                OverloadedError(
                    f"{self.host!r} is at its adaptive concurrency limit "
                    f"({self.limiter.limit:.0f}) for class {cls!r}",
                    retry_after_ms=self._retry_after(queue_ms, 0.0),
                ),
            )

        if shed is not None:
            reason, exc = shed
            if self.mode == MODE_ENFORCE:
                ctr = self._shed_ctr(cls, reason)
                if ctr is not None:
                    ctr.inc()
                raise exc
            # Observe mode: record what enforcement *would* have shed —
            # the runbook's dry-run signal — then admit anyway.
            ctr = self._would_shed_ctr(cls, reason)
            if ctr is not None:
                ctr.inc()

        # Admitted: extend the virtual backlog by this request's cost.
        service = cfg.service_cost(cls, cached)
        start = max(now, self.busy_until_ms)
        self.busy_until_ms = start + service
        if len(self._pending) >= cfg.max_pending:
            self._pending.popleft()
        self._pending.append((self.busy_until_ms, cls))
        self.last_queue_ms = queue_ms
        self.last_rtt_ms = queue_ms + service
        hist = self._queue_hist(cls)
        if hist is not None:
            hist.observe(queue_ms)
        self.limiter.observe(self.last_rtt_ms, now)
        return cls

    def gate_done(self, ticket, response: Response) -> None:
        """Completion hook: count served (2xx) responses per class."""
        if ticket is None:
            return
        if response.ok:
            ctr = self._served_ctr(ticket)
            if ctr is not None:
                ctr.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Operator view of this controller (JSON-serializable)."""
        return {
            "Host": self.host,
            "Mode": self.mode,
            "QueueMs": round(self.queue_ms(), 3),
            "Inflight": self.inflight(),
            "ConcurrencyLimit": round(self.limiter.limit, 2),
            "MinRttMs": (
                None if self.limiter.min_rtt_ms == float("inf")
                else round(self.limiter.min_rtt_ms, 3)
            ),
            "BrownoutLevel": self.brownout_level(),
        }
