"""In-process HTTP-like transport.

The paper's components speak HTTPS REST ("the API key ... is included in
the body of a HTTPS POST request and the communication is secured with
HTTPS").  This package simulates that: named hosts mount routers on a
shared :class:`Network`; clients issue requests to ``https://host/path``
URLs; the network counts requests and payload bytes per host (benchmark C2
uses these to show the broker never becomes a bottleneck) and refuses to
carry API keys over plain ``http://`` (the paper's transport invariant).
"""

from repro.net.http import Request, Response, Router, json_response
from repro.net.faults import FaultPlan, FaultRule, SimClock
from repro.net.transport import HostMetrics, Network
from repro.net.resilience import NO_RETRY, CircuitBreaker, RetryPolicy
from repro.net.client import HttpClient

__all__ = [
    "Request",
    "Response",
    "Router",
    "json_response",
    "FaultPlan",
    "FaultRule",
    "SimClock",
    "HostMetrics",
    "Network",
    "NO_RETRY",
    "CircuitBreaker",
    "RetryPolicy",
    "HttpClient",
]
