"""The simulated network: named hosts, metrics, tracing, and TLS invariant.

Hosts mount a :class:`~repro.net.http.Router` under a name ("broker",
"alice-store").  :meth:`Network.request` parses a URL, serializes the body
to measure payload bytes, enforces that API keys only travel over HTTPS
POST bodies, dispatches to the target router, and records per-host traffic
metrics.

The byte accounting is the instrument for benchmark C2: the paper claims
"the broker is not a performance bottleneck because sensor data are
directly transferred from each remote data store to data consumers" — with
these counters we can show broker traffic stays flat while store traffic
scales with data volume.

Observability: the network owns the deployment's
:class:`~repro.obs.Observability` hub.  Every delivered request increments
per-host, per-route, and per-status-class counters in the shared metrics
registry (:class:`HostMetrics` is now a back-compat view over those
counters) and runs inside a ``net.request`` server span that joins the
caller's trace via the ``Traceparent`` request header.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.exceptions import InsecureTransportError, TransportError
from repro.net.faults import FaultPlan, SimClock
from repro.net.http import Request, Response, Router
from repro.obs import Observability
from repro.util import jsonutil

_URL_RE = re.compile(r"^(https?)://([A-Za-z0-9._-]+)(/.*)?$")

_STATUS_CLASSES = ("1xx", "2xx", "3xx", "4xx", "5xx")


class HostMetrics:
    """Traffic counters for one host — a view over the metrics registry.

    Keeps the original attribute surface (``requests_in``, ``bytes_in``,
    ``bytes_out``, ``total_bytes()``) that benchmarks C1/C2/C5 and the
    examples read, while the actual counts live in the shared
    :class:`~repro.obs.metrics.MetricsRegistry` where ``/api/metrics``
    and ``python -m repro obs report`` can see them.
    """

    def __init__(self, registry, host: str):
        self._registry = registry
        self.host = host
        self._requests = registry.counter("net_requests_total", host=host)
        self._bytes_in = registry.counter("net_bytes_in_total", host=host)
        self._bytes_out = registry.counter("net_bytes_out_total", host=host)
        self._dropped = registry.counter("net_requests_dropped_total", host=host)
        self._status = {
            cls: registry.counter("net_responses_total", host=host, status_class=cls)
            for cls in _STATUS_CLASSES
        }

    @property
    def requests_in(self) -> int:
        return self._requests.value

    @property
    def bytes_in(self) -> int:
        return self._bytes_in.value

    @property
    def bytes_out(self) -> int:
        return self._bytes_out.value

    @property
    def requests_dropped(self) -> int:
        """Requests a fault plan dropped before they reached this host."""
        return self._dropped.value

    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out

    def status_class(self, cls: str) -> int:
        """Responses in one status class ("2xx", "4xx", "5xx", ...)."""
        counter = self._status.get(cls)
        return counter.value if counter is not None else 0

    @property
    def status_classes(self) -> dict:
        """Non-zero response counts by status class."""
        return {cls: c.value for cls, c in self._status.items() if c.value}

    def reset(self) -> None:
        for counter in (self._requests, self._bytes_in, self._bytes_out, self._dropped):
            counter.reset()
        for counter in self._status.values():
            counter.reset()


class Network:
    """An in-process network of named hosts."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._hosts: dict[str, Router] = {}
        self.clock = clock or SimClock()
        self.faults = fault_plan
        self.obs = obs if obs is not None else Observability(clock=self.clock)
        self.metrics: dict[str, HostMetrics] = {}

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or with ``None`` remove) a fault-injection plan."""
        self.faults = plan

    def register_host(self, name: str, router: Router) -> None:
        if name in self._hosts:
            raise TransportError(f"host name already registered: {name!r}")
        self._hosts[name] = router
        if name not in self.metrics:  # a restarted host keeps its counters
            self.metrics[name] = HostMetrics(self.obs.metrics, name)

    def unregister_host(self, name: str) -> None:
        """Take a host off the network — a process crash or shutdown.

        Requests to it fail like any unknown host until a restarted
        service re-registers under the same name (crash-recovery tests do
        exactly this); traffic accounting is preserved across the restart.
        """
        self._hosts.pop(name, None)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def metrics_of(self, name: str) -> HostMetrics:
        try:
            return self.metrics[name]
        except KeyError:
            raise TransportError(f"unknown host: {name!r}") from None

    def reset_metrics(self) -> None:
        """Zero the traffic counters (other instrument families survive)."""
        self.obs.metrics.reset("net_")

    @staticmethod
    def parse_url(url: str) -> tuple:
        """Split a URL into (secure, host, path)."""
        match = _URL_RE.match(url)
        if not match:
            raise TransportError(f"malformed URL: {url!r}")
        scheme, host, path = match.groups()
        return scheme == "https", host, path or "/"

    def request(
        self,
        method: str,
        url: str,
        body: Optional[dict] = None,
        *,
        client: str = "anonymous",
        headers: Optional[dict] = None,
    ) -> Response:
        """Deliver one request and return the response.

        Raises :class:`InsecureTransportError` when an ``ApiKey`` field
        would travel over plain http or outside a request body that HTTPS
        protects (the paper's Section 5.4 invariant).
        """
        secure, host, path = self.parse_url(url)
        body = dict(body or {})
        if _carries_api_key(body):
            if not secure:
                raise InsecureTransportError(
                    f"refusing to send an API key over insecure http to {host!r}"
                )
            if method != "POST":
                raise InsecureTransportError(
                    "API keys must be carried in HTTPS POST bodies, "
                    f"not {method} requests"
                )
        router = self._hosts.get(host)
        if router is None:
            raise TransportError(f"no such host: {host!r}")
        headers = dict(headers or {})
        route = router.route_pattern(method, path) or path
        metrics = self.metrics[host]
        tracer = self.obs.tracer
        with tracer.start_span(
            "net.request",
            remote_parent=tracer.extract(headers),
            method=method,
            host=host,
            route=route,
            peer=client,
        ) as span:
            injected: Optional[Response] = None
            if self.faults is not None:
                # May raise NetworkUnavailableError (drop/partition/outage) —
                # the request never reaches the host, so nothing is counted
                # against its traffic (only the drop counter moves).
                try:
                    injected = self.faults.apply(method, host, path, client, self.clock)
                except Exception:
                    metrics._dropped.inc()
                    raise
            payload = jsonutil.canonical_dumps(body)
            # The request has arrived: count it (and its payload) before
            # dispatch so traffic accounting stays honest when a handler — or
            # an injected fault — errors out.
            metrics._requests.inc()
            metrics._bytes_in.inc(len(payload))
            if injected is not None:
                response = injected
                span.set_attribute("fault_injected", True)
            else:
                request = Request(
                    method=method,
                    host=host,
                    path=path,
                    body=body,
                    secure=secure,
                    client=client,
                    headers=headers,
                )
                response = router.dispatch(request)
                if self.faults is not None:
                    # Post-dispatch faults: the handler committed, but the
                    # ack can still be lost on the way back to the caller.
                    lost = self.faults.apply_response(
                        method, host, path, client, self.clock
                    )
                    if lost is not None:
                        response = lost
                        span.set_attribute("fault_injected", True)
            metrics._bytes_out.inc(len(jsonutil.canonical_dumps(response.body)))
            status_class = f"{response.status // 100}xx"
            counter = metrics._status.get(status_class)
            if counter is not None:
                counter.inc()
            self.obs.metrics.counter(
                "net_route_requests_total",
                host=host,
                route=route,
                status_class=status_class,
            ).inc()
            span.set_attribute("status", response.status)
            if response.status >= 500:
                span.set_error(f"status {response.status}")
        return response


def _carries_api_key(body: dict) -> bool:
    """Does the body carry an ``ApiKey`` at the top level or one level deep?

    Section 5.4's invariant must also catch keys smuggled inside a nested
    object (e.g. ``{"Profile": {"ApiKey": ...}}``) — one level is as deep
    as any legitimate request schema nests.
    """
    if "ApiKey" in body:
        return True
    for value in body.values():
        if isinstance(value, dict) and "ApiKey" in value:
            return True
        if isinstance(value, list) and any(
            isinstance(item, dict) and "ApiKey" in item for item in value
        ):
            return True
    return False
