"""The simulated network: named hosts, metrics, and the TLS invariant.

Hosts mount a :class:`~repro.net.http.Router` under a name ("broker",
"alice-store").  :meth:`Network.request` parses a URL, serializes the body
to measure payload bytes, enforces that API keys only travel over HTTPS
POST bodies, dispatches to the target router, and records per-host traffic
metrics.

The byte accounting is the instrument for benchmark C2: the paper claims
"the broker is not a performance bottleneck because sensor data are
directly transferred from each remote data store to data consumers" — with
these counters we can show broker traffic stays flat while store traffic
scales with data volume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import InsecureTransportError, TransportError
from repro.net.faults import FaultPlan, SimClock
from repro.net.http import Request, Response, Router
from repro.util import jsonutil

_URL_RE = re.compile(r"^(https?)://([A-Za-z0-9._-]+)(/.*)?$")


@dataclass
class HostMetrics:
    """Traffic counters for one host."""

    requests_in: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out


class Network:
    """An in-process network of named hosts."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._hosts: dict[str, Router] = {}
        self.metrics: dict[str, HostMetrics] = {}
        self.clock = clock or SimClock()
        self.faults = fault_plan

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Install (or with ``None`` remove) a fault-injection plan."""
        self.faults = plan

    def register_host(self, name: str, router: Router) -> None:
        if name in self._hosts:
            raise TransportError(f"host name already registered: {name!r}")
        self._hosts[name] = router
        self.metrics[name] = HostMetrics()

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def metrics_of(self, name: str) -> HostMetrics:
        try:
            return self.metrics[name]
        except KeyError:
            raise TransportError(f"unknown host: {name!r}") from None

    def reset_metrics(self) -> None:
        for name in self.metrics:
            self.metrics[name] = HostMetrics()

    @staticmethod
    def parse_url(url: str) -> tuple:
        """Split a URL into (secure, host, path)."""
        match = _URL_RE.match(url)
        if not match:
            raise TransportError(f"malformed URL: {url!r}")
        scheme, host, path = match.groups()
        return scheme == "https", host, path or "/"

    def request(
        self,
        method: str,
        url: str,
        body: Optional[dict] = None,
        *,
        client: str = "anonymous",
    ) -> Response:
        """Deliver one request and return the response.

        Raises :class:`InsecureTransportError` when an ``ApiKey`` field
        would travel over plain http or outside a request body that HTTPS
        protects (the paper's Section 5.4 invariant).
        """
        secure, host, path = self.parse_url(url)
        body = dict(body or {})
        if _carries_api_key(body):
            if not secure:
                raise InsecureTransportError(
                    f"refusing to send an API key over insecure http to {host!r}"
                )
            if method != "POST":
                raise InsecureTransportError(
                    "API keys must be carried in HTTPS POST bodies, "
                    f"not {method} requests"
                )
        router = self._hosts.get(host)
        if router is None:
            raise TransportError(f"no such host: {host!r}")
        injected: Optional[Response] = None
        if self.faults is not None:
            # May raise NetworkUnavailableError (drop/partition/outage) —
            # the request never reaches the host, so nothing is counted.
            injected = self.faults.apply(method, host, path, client, self.clock)
        payload = jsonutil.canonical_dumps(body)
        # The request has arrived: count it (and its payload) before
        # dispatch so traffic accounting stays honest when a handler — or
        # an injected fault — errors out.
        metrics = self.metrics[host]
        metrics.requests_in += 1
        metrics.bytes_in += len(payload)
        if injected is not None:
            response = injected
        else:
            request = Request(
                method=method, host=host, path=path, body=body, secure=secure, client=client
            )
            response = router.dispatch(request)
        metrics.bytes_out += len(jsonutil.canonical_dumps(response.body))
        return response


def _carries_api_key(body: dict) -> bool:
    """Does the body carry an ``ApiKey`` at the top level or one level deep?

    Section 5.4's invariant must also catch keys smuggled inside a nested
    object (e.g. ``{"Profile": {"ApiKey": ...}}``) — one level is as deep
    as any legitimate request schema nests.
    """
    if "ApiKey" in body:
        return True
    for value in body.values():
        if isinstance(value, dict) and "ApiKey" in value:
            return True
        if isinstance(value, list) and any(
            isinstance(item, dict) and "ApiKey" in item for item in value
        ):
            return True
    return False
