"""HTTP-like request/response model and a path router.

Routes are registered as ``"POST /api/query"`` or with path parameters,
``"GET /web/rules/{contributor}"``; handlers receive the request plus the
extracted parameters as keyword arguments.  Service-layer exceptions
(:class:`~repro.exceptions.ServiceError`) are mapped to their status codes
by :meth:`Router.dispatch`, so handlers raise instead of hand-building
error responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import SensorSafeError, ServiceError

_METHODS = ("GET", "POST", "PUT", "DELETE")


@dataclass
class Request:
    """One request as delivered to a handler."""

    method: str
    host: str
    path: str
    body: dict = field(default_factory=dict)
    secure: bool = True  # https vs http
    client: str = "anonymous"  # network name of the caller, for metrics
    headers: dict = field(default_factory=dict)  # transport metadata (trace context)

    @property
    def api_key(self) -> Optional[str]:
        """The API key carried in the body (paper Section 5.4), if any."""
        key = self.body.get("ApiKey")
        return str(key) if key is not None else None


@dataclass
class Response:
    """One response; ``body`` must be JSON-serializable."""

    status: int = 200
    body: dict = field(default_factory=dict)
    content_type: str = "application/json"

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def json_response(body: dict, status: int = 200) -> Response:
    return Response(status=status, body=body)


def html_response(html: str, status: int = 200) -> Response:
    return Response(status=status, body={"Html": html}, content_type="text/html")


class Router:
    """Maps ``METHOD /path/{param}`` patterns to handler callables."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, list, Callable]] = []
        #: Admission gate (see :mod:`repro.net.overload`): called with the
        #: request before the handler runs; may raise a
        #: :class:`~repro.exceptions.ServiceError` to shed the request
        #: (mapped to its status like any handler error).  Returns an
        #: opaque ticket handed to ``gate_done`` with the final response.
        self.gate: Optional[Callable[[Request], object]] = None
        self.gate_done: Optional[Callable[[object, "Response"], None]] = None

    def route(self, method: str, pattern: str) -> Callable:
        """Decorator: ``@router.route("POST", "/api/query")``."""
        if method not in _METHODS:
            raise ValueError(f"unsupported HTTP method: {method!r}")
        segments = self._split(pattern)

        def decorator(handler: Callable) -> Callable:
            self._routes.append((method, segments, handler))
            return handler

        return decorator

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        """Imperative registration (used by service classes)."""
        self.route(method, pattern)(handler)

    @staticmethod
    def _split(path: str) -> list:
        return [seg for seg in path.split("/") if seg]

    def _match(self, method: str, path: str):
        segments = self._split(path)
        for route_method, pattern, handler in self._routes:
            if route_method != method or len(pattern) != len(segments):
                continue
            params = {}
            matched = True
            for pat, seg in zip(pattern, segments):
                if pat.startswith("{") and pat.endswith("}"):
                    params[pat[1:-1]] = seg
                elif pat != seg:
                    matched = False
                    break
            if matched:
                return handler, params
        return None, {}

    def route_pattern(self, method: str, path: str) -> Optional[str]:
        """The registered pattern a path resolves to, e.g. ``/web/rules/{contributor}``.

        Used as the low-cardinality ``route`` metric label: path *parameters*
        (contributor names) collapse into their placeholder.
        """
        segments = self._split(path)
        for route_method, pattern, _handler in self._routes:
            if route_method != method or len(pattern) != len(segments):
                continue
            if all(
                pat == seg or (pat.startswith("{") and pat.endswith("}"))
                for pat, seg in zip(pattern, segments)
            ):
                return "/" + "/".join(pattern)
        return None

    def dispatch(self, request: Request) -> Response:
        """Route and invoke; translate errors into status codes."""
        handler, params = self._match(request.method, request.path)
        if handler is None:
            return json_response(
                {"Error": f"no route for {request.method} {request.path}"}, status=404
            )
        ticket = None
        try:
            if self.gate is not None:
                # Admission control runs before the handler: a shed (or a
                # deadline reject) costs no rule evaluation.  A shed raise
                # leaves ticket None, so gate_done never fires for it.
                ticket = self.gate(request)
            result = handler(request, **params)
        except ServiceError as exc:
            # ErrorKind lets clients react to the *specific* failure — a
            # NotPrimaryError must trigger re-resolution at the broker,
            # which a status code alone (409) cannot express.  body_fields
            # carries structured hints (OverloadedError's RetryAfterMs).
            response = json_response(
                {"Error": str(exc), "ErrorKind": type(exc).__name__,
                 **exc.body_fields()},
                status=exc.status,
            )
            self._finish(ticket, response)
            return response
        except SensorSafeError as exc:
            # Domain errors raised below the service layer are bad requests.
            response = json_response({"Error": str(exc)}, status=400)
            self._finish(ticket, response)
            return response
        if isinstance(result, Response):
            response = result
        elif isinstance(result, dict):
            response = json_response(result)
        else:
            raise TypeError(
                f"handler returned {type(result).__name__}, expected Response or dict"
            )
        self._finish(ticket, response)
        return response

    def _finish(self, ticket, response: Response) -> None:
        if ticket is not None and self.gate_done is not None:
            self.gate_done(ticket, response)
