"""HTTP client bound to the simulated network.

Injects the caller's API key into every POST body (the paper's transport
convention) and raises :class:`~repro.exceptions.ServiceError` subclasses
for error statuses so application code can use ordinary exception flow.

Resilience is opt-in per client or per call: construct with a
:class:`~repro.net.resilience.RetryPolicy` (or pass one to :meth:`post`)
and failed requests are retried with capped exponential backoff on the
network's simulated clock — but only *safe* failures: dropped requests
that never reached the host, and 5xx responses.  A 4xx is never retried.
A per-host :class:`~repro.net.resilience.CircuitBreaker` sheds calls to a
host that keeps failing until its reset timeout elapses.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.exceptions import (
    AuthenticationError,
    AuthorizationError,
    BadRequestError,
    CircuitOpenError,
    ConflictError,
    DeadlineExceededError,
    DeadlineExpiredError,
    NetworkUnavailableError,
    NotFoundError,
    NotPrimaryError,
    OverloadedError,
    ReplicationError,
    ServiceError,
    StaleEpochError,
)
from repro.net.http import Response
from repro.net.resilience import CircuitBreaker, RetryBudget, RetryPolicy
from repro.net.transport import Network

_STATUS_ERRORS = {
    400: BadRequestError,
    401: AuthenticationError,
    403: AuthorizationError,
    404: NotFoundError,
    409: ConflictError,
}

#: Error kinds (see Router.dispatch) that reconstruct as their concrete
#: class client-side — callers must distinguish "talk to the broker and
#: re-resolve the primary" from an ordinary conflict or server error.
_KIND_ERRORS = {
    "NotPrimaryError": NotPrimaryError,
    "StaleEpochError": StaleEpochError,
    "ReplicationError": ReplicationError,
    "OverloadedError": OverloadedError,
    "DeadlineExpiredError": DeadlineExpiredError,
}

#: Error kinds that are *backpressure* from a live host (admission-control
#: sheds): the breaker must not count them as failures, or brownout causes
#: breaker trips and traffic oscillation.
_BACKPRESSURE_KINDS = frozenset({"OverloadedError", "DeadlineExpiredError"})


def _error_kind(response: Response) -> str:
    return str(response.body.get("ErrorKind", ""))


class HttpClient:
    """A principal's view of the network."""

    def __init__(
        self,
        network: Network,
        name: str = "client",
        api_key: Optional[str] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[dict] = None,
        deadline_ms: Optional[int] = None,
        retry_budget: Optional[RetryBudget] = None,
    ):
        self.network = network
        self.name = name
        self.api_key = api_key
        self.retry = retry
        #: total time budget per call, across every retry attempt and its
        #: backoff, on the simulated clock.  ``None`` means unbounded (the
        #: pre-existing behavior: ``max_attempts`` is the only cap).
        self.deadline_ms = deadline_ms
        #: per-host circuit breakers, shared across with_key() copies so
        #: circuit state follows the principal, not the key in hand.
        self.breakers: dict[str, CircuitBreaker] = breakers if breakers is not None else {}
        #: optional retry token bucket (see resilience.RetryBudget); like
        #: the breakers, shared across with_key() copies.  ``None`` keeps
        #: the pre-existing behavior: max_attempts is the only retry cap.
        self.retry_budget = retry_budget

    def with_key(self, api_key: str) -> "HttpClient":
        """A copy of this client authenticating with a different key."""
        return HttpClient(
            self.network,
            self.name,
            api_key,
            retry=self.retry,
            breakers=self.breakers,
            deadline_ms=self.deadline_ms,
            retry_budget=self.retry_budget,
        )

    def post(
        self,
        url: str,
        body: Optional[dict] = None,
        *,
        raw: bool = False,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[int] = None,
    ) -> Union[dict, Response]:
        """POST with the API key injected; returns the response body.

        With ``raw=True`` the full :class:`Response` is returned and error
        statuses are not raised — used by tests asserting on status codes.
        ``retry`` and ``deadline_ms`` override the client's defaults for
        this call.
        """
        body = dict(body or {})
        if self.api_key is not None and "ApiKey" not in body:
            body["ApiKey"] = self.api_key
        response = self._send("POST", url, body, retry=retry, deadline_ms=deadline_ms)
        if raw:
            return response
        return self._unwrap(response)

    def get(
        self,
        url: str,
        *,
        raw: bool = False,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[int] = None,
    ) -> Union[dict, Response]:
        """GET (no API key; used for public web pages)."""
        response = self._send("GET", url, None, retry=retry, deadline_ms=deadline_ms)
        if raw:
            return response
        return self._unwrap(response)

    # ------------------------------------------------------------------
    # Resilient send loop
    # ------------------------------------------------------------------

    def _breaker_for(self, host: str) -> CircuitBreaker:
        breaker = self.breakers.get(host)
        if breaker is None:
            metrics = self.network.obs.metrics

            def observe(old_state: str, new_state: str, _host: str = host) -> None:
                metrics.counter(
                    "breaker_transitions_total", host=_host, to_state=new_state
                ).inc()

            breaker = self.breakers[host] = CircuitBreaker(on_state_change=observe)
        return breaker

    def _request(
        self,
        method: str,
        url: str,
        body: Optional[dict],
        deadline_at: Optional[int] = None,
    ) -> Response:
        """One network delivery, carrying the active trace context.

        When the call has a deadline, the *remaining* budget at send time
        is stamped into ``X-Deadline-Ms`` so servers can reject requests
        whose caller will have given up before the answer arrives (the
        admission controller's typed 504) instead of burning capacity on
        them.
        """
        headers = self.network.obs.tracer.inject({})
        if deadline_at is not None:
            remaining = deadline_at - self.network.clock.now_ms()
            headers["X-Deadline-Ms"] = str(max(0, int(remaining)))
        return self.network.request(
            method, url, body, client=self.name, headers=headers
        )

    def _send(
        self,
        method: str,
        url: str,
        body: Optional[dict],
        *,
        retry: Optional[RetryPolicy],
        deadline_ms: Optional[int] = None,
    ) -> Response:
        policy = retry if retry is not None else self.retry
        deadline = deadline_ms if deadline_ms is not None else self.deadline_ms
        _, host, path = Network.parse_url(url)
        obs = self.network.obs
        clock = self.network.clock
        #: absolute cutoff on the simulated clock; enforced at every retry
        #: boundary so a slow-host fault schedule (latency + drops across
        #: many attempts, each with backoff) cannot stall a caller past its
        #: budget.  A send already in flight cannot be interrupted — the
        #: check runs before each sleep and before each re-send.
        deadline_at = None if deadline is None else clock.now_ms() + deadline

        def out_of_budget(extra_ms: int = 0) -> bool:
            return deadline_at is not None and clock.now_ms() + extra_ms >= deadline_at

        def budget_spent() -> DeadlineExceededError:
            obs.metrics.counter("client_deadline_exceeded_total", host=host).inc()
            return DeadlineExceededError(
                f"deadline of {deadline}ms exhausted calling {host!r}{path}"
            )

        with obs.tracer.start_span(
            "client.send", method=method, host=host, peer=self.name
        ) as span:
            if policy is None:
                if out_of_budget():
                    raise budget_spent()
                response = self._request(method, url, body, deadline_at)
                span.set_attribute("status", response.status)
                return response
            breaker = self._breaker_for(host)
            budget = self.retry_budget
            last_error: Optional[NetworkUnavailableError] = None
            last_response: Optional[Response] = None
            retry_after_ms: Optional[float] = None
            for attempt in range(policy.max_attempts):
                if attempt:
                    if budget is not None and not budget.take():
                        # Retry budget exhausted: surface the last outcome
                        # instead of adding to a storm.  (~10% of successes
                        # earn tokens back — see resilience.RetryBudget.)
                        obs.metrics.counter(
                            "retry_budget_exhausted_total", host=host
                        ).inc()
                        break
                    delay = policy.delay_ms(attempt, key=f"{self.name}|{host}{path}")
                    if retry_after_ms is not None:
                        # An overloaded host told us when to come back;
                        # honoring the hint beats hammering it sooner.
                        delay = max(delay, retry_after_ms)
                        retry_after_ms = None
                    if out_of_budget(delay):
                        raise budget_spent()
                    obs.metrics.counter("client_retry_attempts_total", host=host).inc()
                    clock.sleep(delay)
                elif out_of_budget():
                    raise budget_spent()
                if not breaker.allow(clock.now_ms()):
                    obs.metrics.counter("breaker_calls_shed_total", host=host).inc()
                    raise CircuitOpenError(
                        f"circuit open for {host!r}; call shed without sending"
                    )
                try:
                    response = self._request(method, url, body, deadline_at)
                except NetworkUnavailableError as exc:
                    breaker.record_failure(clock.now_ms())
                    last_error, last_response = exc, None
                    continue
                kind = _error_kind(response)
                if (
                    response.ok
                    or kind == "DeadlineExpiredError"
                    or not policy.should_retry_response(response)
                ):
                    # Delivered — success, or a definitive answer a resend
                    # could never change: a 4xx, or the server's typed 504
                    # (our own budget expired in its queue; retrying only
                    # shrinks it further).  Only *unexplained* 5xx count
                    # against the breaker's failure streak — an explicit
                    # shed is backpressure from a live host.
                    if response.ok:
                        breaker.record_success()
                        if budget is not None:
                            budget.deposit()
                    elif kind in _BACKPRESSURE_KINDS:
                        breaker.record_backpressure()
                    elif response.status >= 500:
                        breaker.record_failure(clock.now_ms())
                    span.set_attributes(status=response.status, attempts=attempt + 1)
                    return response
                if kind in _BACKPRESSURE_KINDS:
                    breaker.record_backpressure()
                    hint = response.body.get("RetryAfterMs")
                    if hint is not None:
                        try:
                            retry_after_ms = float(hint)
                        except (TypeError, ValueError):
                            retry_after_ms = None
                else:
                    breaker.record_failure(clock.now_ms())
                last_error, last_response = None, response
            span.set_attribute("attempts", policy.max_attempts)
            if last_response is not None:
                span.set_attribute("status", last_response.status)
                return last_response  # retries exhausted on a 5xx: surface it
            assert last_error is not None
            raise last_error

    @staticmethod
    def _unwrap(response: Response) -> dict:
        if response.ok:
            return response.body
        error = response.body.get("Error", f"status {response.status}")
        exc_type = _KIND_ERRORS.get(_error_kind(response)) or (
            _STATUS_ERRORS.get(response.status, ServiceError)
        )
        if exc_type is OverloadedError:
            # Reconstruct the Retry-After hint so callers (the phone's
            # offline-queue drain) can honor it without parsing bodies.
            raise OverloadedError(
                error,
                status=response.status,
                retry_after_ms=int(response.body.get("RetryAfterMs", 0) or 0),
            )
        raise exc_type(error, status=response.status)
