"""HTTP client bound to the simulated network.

Injects the caller's API key into every POST body (the paper's transport
convention) and raises :class:`~repro.exceptions.ServiceError` subclasses
for error statuses so application code can use ordinary exception flow.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import (
    AuthenticationError,
    AuthorizationError,
    BadRequestError,
    ConflictError,
    NotFoundError,
    ServiceError,
)
from repro.net.http import Response
from repro.net.transport import Network

_STATUS_ERRORS = {
    400: BadRequestError,
    401: AuthenticationError,
    403: AuthorizationError,
    404: NotFoundError,
    409: ConflictError,
}


class HttpClient:
    """A principal's view of the network."""

    def __init__(self, network: Network, name: str = "client", api_key: Optional[str] = None):
        self.network = network
        self.name = name
        self.api_key = api_key

    def with_key(self, api_key: str) -> "HttpClient":
        """A copy of this client authenticating with a different key."""
        return HttpClient(self.network, self.name, api_key)

    def post(self, url: str, body: Optional[dict] = None, *, raw: bool = False) -> dict:
        """POST with the API key injected; returns the response body.

        With ``raw=True`` the full :class:`Response` is returned and error
        statuses are not raised — used by tests asserting on status codes.
        """
        body = dict(body or {})
        if self.api_key is not None and "ApiKey" not in body:
            body["ApiKey"] = self.api_key
        response = self.network.request("POST", url, body, client=self.name)
        if raw:
            return response
        return self._unwrap(response)

    def get(self, url: str, *, raw: bool = False):
        """GET (no API key; used for public web pages)."""
        response = self.network.request("GET", url, client=self.name)
        if raw:
            return response
        return self._unwrap(response)

    @staticmethod
    def _unwrap(response: Response) -> dict:
        if response.ok:
            return response.body
        error = response.body.get("Error", f"status {response.status}")
        exc_type = _STATUS_ERRORS.get(response.status, ServiceError)
        raise exc_type(error, status=response.status)
