"""Audit trails and rule recommendations: closing the privacy loop.

The paper's Section 6 has Alice *manually* reviewing her data and
noticing she is "frequently stressed while driving".  This example runs
the automated version the Personal Data Vault lineage proposed: the
recommender mines her stored data for concerning patterns and proposes
ready-to-add rules; the audit trail then shows her exactly what each
consumer has been taking.

Run:  python examples/audit_and_recommendations.py
"""

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    make_persona,
    timestamp_ms,
)

MONDAY = timestamp_ms(2011, 2, 7)
DAY_MS = 86_400_000


def main() -> None:
    system = SensorSafeSystem(seed=33)
    alice = system.add_contributor("alice")
    persona = make_persona("alice", commute_mode="Drive", stress_prob=0.4, smoker=True)
    alice.set_places(persona.places.values())
    alice.add_rule(Rule(consumers=("bob",), action=ALLOW))

    trace = TraceSimulator(persona, SimulatorConfig(rate_scale=0.05), seed=2).run(
        MONDAY, days=1
    )
    alice.phone(PhoneConfig(rule_aware=False)).collect(trace.all_packets_sorted())

    # Bob helps himself to a few windows of data.
    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    for hour in (8, 12, 18):
        bob.fetch(
            "alice",
            DataQuery(time_range=Interval(MONDAY + hour * 3_600_000,
                                          MONDAY + (hour + 1) * 3_600_000)),
        )

    # -- The audit trail: who took what.
    print("== audit trail ==")
    for record in alice.audit_trail():
        labels = ", ".join(record.labels_released) or "-"
        print(
            f"  #{record.seq} {record.principal:<6} released "
            f"{record.samples_released:>6,} samples "
            f"({record.pieces_released} pieces; labels: {labels})"
        )
    print("summary:", alice.audit_summary())

    # -- The recommender: what should worry Alice.
    print("\n== rule recommendations ==")
    suggestions = alice.suggest_rules(min_support=4)
    for suggestion in suggestions:
        print(f"  [{suggestion.confidence:.0%}] {suggestion.rationale}")
        print(f"        proposed rule: {suggestion.rule.describe()}")

    # Alice accepts the strongest suggestion.
    if suggestions:
        chosen = suggestions[0]
        alice.add_rule(chosen.rule)
        print(f"\nalice accepted: {chosen.rule.describe()}")
        after = bob.fetch(
            "alice",
            DataQuery(time_range=Interval(MONDAY + 8 * 3_600_000,
                                          MONDAY + 9 * 3_600_000)),
        )
        print(f"bob's next commute-window fetch: {len(after)} pieces, "
              f"{sum(r.n_samples for r in after):,} raw samples "
              "(tightened by the accepted rule)")


if __name__ == "__main__":
    main()
