"""A participatory-sensing campaign across multiple institutions.

Exercises the IRB topology of Section 1: two institutional stores each
host their own participants' data (plus one self-hosted contributor), a
campaign coordinator recruits across all of them through the broker, and
the example verifies the two architectural claims of Fig. 1 — sensor
payloads never transit the broker, and compromising one store exposes
only that institution's participants.

Run:  python examples/participatory_campaign.py
"""

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SearchCriteria,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    abstraction,
    make_persona,
    timestamp_ms,
)

MONDAY = timestamp_ms(2011, 2, 7)


def main() -> None:
    system = SensorSafeSystem(seed=23)

    # Institutional remote data stores (the IRB requirement).
    ucla = system.create_store("ucla-store", institution="UCLA")
    memphis = system.create_store("memphis-store", institution="U-Memphis")

    roster = []
    for i in range(4):
        roster.append((system.add_contributor(f"ucla-{i}", store=ucla), 0.002 * i))
    for i in range(3):
        roster.append(
            (system.add_contributor(f"memphis-{i}", store=memphis), 0.01 + 0.002 * i)
        )
    roster.append((system.add_contributor("indie"), 0.05))

    # Participants upload a (short) day and set varied privacy rules:
    # even-numbered participants share GPS raw, odd ones only city-level.
    for index, (contributor, offset) in enumerate(roster):
        persona = make_persona(contributor.name, seed_offset=offset)
        contributor.set_places(persona.places.values())
        contributor.add_rule(Rule(consumers=("air-campaign",), action=ALLOW))
        if index % 2:
            contributor.add_rule(
                Rule(consumers=("air-campaign",), action=abstraction(Location="city"))
            )
        trace = TraceSimulator(
            persona,
            SimulatorConfig(rate_scale=0.05, channels=("GpsLat", "GpsLon", "AccelX", "AccelY", "AccelZ")),
            seed=index,
        ).run(MONDAY, days=1)
        phone = contributor.phone(PhoneConfig(rule_aware=True))
        phone.collect(trace.all_packets_sorted())
    print(f"{len(roster)} participants across 3 stores uploaded data")

    # The campaign coordinator.
    coordinator = system.add_consumer("erin")
    coordinator.create_study("air-campaign")
    names = [c["Contributor"] for c in coordinator.list_contributors()]
    coordinator.add_contributors(names)

    # Who shares raw GPS coordinates?  (The campaign needs exact tracks.)
    precise = coordinator.search(
        SearchCriteria(consumer="erin", channels=("GPS",))
    )
    print(f"participants sharing raw GPS: {len(precise)} of {len(names)}")

    # Download morning GPS tracks directly from each store.
    window = DataQuery(
        channels=("GPS",),
        time_range=Interval(MONDAY + 8 * 3_600_000, MONDAY + 10 * 3_600_000),
    )
    system.network.reset_metrics()
    total = 0
    for name in precise:
        total += sum(r.n_samples for r in coordinator.fetch(name, window))
    print(f"downloaded {total:,} GPS samples for the 8-10am window")

    # Fig. 1 claim: the broker carried no sensor payload during downloads.
    broker_bytes = system.network.metrics_of("broker").total_bytes()
    store_bytes = sum(
        system.network.metrics_of(h).total_bytes()
        for h in system.network.hosts()
        if h.endswith("-store")
    )
    print(f"data-path traffic — broker: {broker_bytes:,} B, stores: {store_bytes:,} B")

    # Containment: a breach of the Memphis store exposes only Memphis data.
    exposed = set(system.stores["memphis-store"].store.contributors())
    print(f"breach of memphis-store would expose only: {sorted(exposed)}")
    assert exposed == {"memphis-0", "memphis-1", "memphis-2"}


if __name__ == "__main__":
    main()
