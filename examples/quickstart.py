"""Quickstart: share sensor data under a privacy rule in ~40 lines.

Builds the paper's Fig. 1 topology in-process (one broker, one remote data
store), uploads a day of simulated chest-band data, defines one privacy
rule, and fetches the data back as the consumer sees it.

Run:  python examples/quickstart.py
"""

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    abstraction,
    make_persona,
    timestamp_ms,
)

MONDAY = timestamp_ms(2011, 2, 7)
DAY_MS = 86_400_000


def main() -> None:
    system = SensorSafeSystem(seed=7)

    # -- Alice, a data contributor, with her own remote data store.
    alice = system.add_contributor("alice")
    persona = make_persona("alice")
    alice.set_places(persona.places.values())

    # Privacy rules: share everything with bob, but location only at city
    # granularity.
    alice.add_rule(Rule(consumers=("bob",), action=ALLOW))
    alice.add_rule(Rule(consumers=("bob",), action=abstraction(Location="city")))

    # Her phone simulates one day of life and uploads it.
    trace = TraceSimulator(persona, SimulatorConfig(rate_scale=0.1), seed=1).run(
        MONDAY, days=1
    )
    phone = alice.phone(PhoneConfig(rule_aware=False))
    phone.collect(trace.all_packets_sorted())
    print(f"alice uploaded {phone.stats.samples_uploaded} samples "
          f"in {phone.stats.upload_requests} requests")

    # -- Bob, a data consumer, discovers alice through the broker and
    #    downloads directly from her store.
    bob = system.add_consumer("bob")
    bob.add_contributors(["alice"])
    morning = DataQuery(
        channels=("ECG", "Accelerometer"),
        time_range=Interval(MONDAY + 8 * 3_600_000, MONDAY + 12 * 3_600_000),
    )
    released = bob.fetch("alice", morning)

    print(f"bob received {len(released)} released pieces")
    sample = next(r for r in released if r.segment is not None)
    print(f"  channels:  {sample.channels()}")
    print(f"  location:  {sample.location}   (city-level label, per the rule)")
    print(f"  labels:    {sample.context_labels}")

    # The broker carried only control traffic; data flowed directly.
    for host, metrics in sorted(system.traffic().items()):
        print(f"  {host:<14} {metrics.requests_in:>5} requests, "
              f"{metrics.total_bytes():>12,} bytes")


if __name__ == "__main__":
    main()
