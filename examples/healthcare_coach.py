"""The health-care application of Section 6: sharing with a personal coach.

A contributor shares *activity* information with a fitness coach at three
different abstraction levels over time — raw accelerometer, transport-mode
labels, then bare moving/not-moving — demonstrating the Table 1(b) ladder
and the dependency closure (the coach never receives physiological
channels at all).

Run:  python examples/healthcare_coach.py
"""

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    abstraction,
    make_persona,
    timestamp_ms,
)

MONDAY = timestamp_ms(2011, 2, 7)
EVENING = DataQuery(
    time_range=Interval(MONDAY + 17 * 3_600_000, MONDAY + 20 * 3_600_000)
)


def summarize(tag: str, released) -> None:
    channels = sorted({c for r in released for c in r.channels()})
    activities = sorted(
        {r.context_labels["Activity"] for r in released if "Activity" in r.context_labels}
    )
    others = sorted(
        {k for r in released for k in r.context_labels if k != "Activity"}
    )
    print(f"{tag}")
    print(f"  raw channels released : {channels or '(none)'}")
    print(f"  activity labels seen  : {activities or '(none)'}")
    print(f"  other label categories: {others or '(none)'}")


def main() -> None:
    system = SensorSafeSystem(seed=11)
    dana = system.add_contributor("dana")
    persona = make_persona("dana", commute_mode="Bike")
    dana.set_places(persona.places.values())

    trace = TraceSimulator(persona, SimulatorConfig(rate_scale=0.1), seed=5).run(
        MONDAY, days=1
    )
    phone = dana.phone(PhoneConfig(rule_aware=False))
    phone.collect(trace.all_packets_sorted())

    coach = system.add_consumer("coach")
    coach.add_contributors(["dana"])

    # Level 1: raw accelerometer data (the paper's "health coach only
    # needs activity data").
    allow_id = dana.add_rule(
        Rule(consumers=("coach",), sensors=("Accelerometer",), action=ALLOW)
    )
    summarize("level 1 — raw accelerometer:", coach.fetch("dana", EVENING))

    # Level 2: transport-mode labels only.  The closure withdraws the raw
    # axes because Activity is no longer shared at raw level.
    ladder_id = dana.add_rule(
        Rule(consumers=("coach",), action=abstraction(Activity="TransportMode"))
    )
    summarize("\nlevel 2 — transport modes only:", coach.fetch("dana", EVENING))

    # Level 3: the coarsest rung — moving or not.
    dana.remove_rule(ladder_id)
    dana.add_rule(
        Rule(consumers=("coach",), action=abstraction(Activity="MoveNotMove"))
    )
    summarize("\nlevel 3 — move / not-move:", coach.fetch("dana", EVENING))

    # Physiological channels were never shared with the coach: the allow
    # rule is accelerometer-scoped, so even level 1 leaked no ECG.
    everything = coach.fetch("dana", DataQuery())
    assert all(
        c.startswith("Accel") for r in everything for c in r.channels()
    ), "coach must never see non-accelerometer channels"
    print("\ninvariant held: the coach never received a non-accelerometer channel")


if __name__ == "__main__":
    main()
