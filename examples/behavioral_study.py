"""The paper's Section 6 scenario: a medical behavioral study.

Alice wears a chest band (ECG + respiration) and carries a smartphone
(accelerometer, GPS, microphone).  She shares everything with the stress
study, then — after reviewing her data — denies stress information while
driving and accelerometer data at home, and turns on privacy rule-aware
collection.  Bob, the study coordinator, searches the broker for
contributors who *do* share stress while driving, and finds that Alice is
correctly excluded.

Run:  python examples/behavioral_study.py
"""

from repro import (
    ALLOW,
    DataQuery,
    Interval,
    PhoneConfig,
    Rule,
    SearchCriteria,
    SensorSafeSystem,
    SimulatorConfig,
    TraceSimulator,
    abstraction,
    make_persona,
    timestamp_ms,
)
from repro.rules.model import DENY

MONDAY = timestamp_ms(2011, 2, 7)
DAY_MS = 86_400_000


def main() -> None:
    system = SensorSafeSystem(seed=42)

    # Twenty study participants; alice is one of them.  The others use
    # varying personas and simply share everything with the study.
    print("== recruiting 20 data contributors ==")
    alice = system.add_contributor("alice")
    alice_persona = make_persona("alice", commute_mode="Drive", stress_prob=0.35)
    alice.set_places(alice_persona.places.values())
    others = []
    for i in range(19):
        name = f"participant-{i:02d}"
        contributor = system.add_contributor(name)
        persona = make_persona(name, seed_offset=0.001 * (i + 1))
        contributor.set_places(persona.places.values())
        contributor.add_rule(Rule(consumers=("stress-study",), action=ALLOW))
        others.append(contributor)

    # "Alice first decides to share all data with the researchers."
    alice.add_rule(Rule(consumers=("stress-study",), action=ALLOW))

    # One day of data collection.
    trace = TraceSimulator(alice_persona, SimulatorConfig(rate_scale=0.1), seed=3).run(
        MONDAY, days=1
    )
    phone = alice.phone(PhoneConfig(rule_aware=False))
    phone.collect(trace.all_packets_sorted())
    print(f"alice uploaded {phone.stats.samples_uploaded:,} samples")

    # "Alice reviews her data ... she is frequently stressed while driving."
    segments = alice.view_data(DataQuery(channels=("ECG",)))
    stressed_driving = sum(
        1
        for s in segments
        if s.context.get("Activity") == "Drive" and s.context.get("Stress") == "Stressed"
    )
    print(f"alice reviews her data: {stressed_driving} stressed-while-driving segments")

    # "She adds a privacy rule that denies access to stress data while
    # driving", and one denying accelerometer data at home.
    alice.add_rule(
        Rule(
            consumers=("stress-study",),
            contexts=("Drive",),
            action=abstraction(Stress="NotShare"),
            note="uncomfortable sharing stress while driving",
        )
    )
    alice.add_rule(
        Rule(sensors=("Accelerometer",), location_labels=("home",), action=DENY)
    )
    print("alice adds two restrictive privacy rules")

    # "She turns on privacy rule-aware data collection on her smartphone."
    aware = alice.phone(PhoneConfig(rule_aware=True))
    kept = aware.collect(trace.all_packets_sorted(), upload=False)
    saved = aware.stats.samples_available - aware.stats.samples_sensed
    print(
        f"rule-aware collection: {aware.stats.samples_sensed:,} of "
        f"{aware.stats.samples_available:,} samples sensed "
        f"({saved:,} never collected)"
    )

    # -- Bob the study coordinator.
    print("\n== bob, the study coordinator ==")
    bob = system.add_consumer("bob")
    bob.create_study("stress-study")
    everyone = [c["Contributor"] for c in bob.list_contributors()]
    bob.add_contributors(everyone)
    print(f"bob added {len(everyone)} contributors; "
          f"broker escrowed {len(bob.refresh_keys())} store keys")

    # "Bob is especially interested in people's stress behavior while they
    # are driving ... he obtains a list of data contributors without Alice."
    matches = bob.search(
        SearchCriteria(
            consumer="bob",
            channels=("ECG", "Respiration"),
            contexts={"Activity": "Drive"},
        )
    )
    print(f"search 'shares stress signals while driving': {len(matches)} matches")
    print(f"  alice excluded: {'alice' not in matches}")
    bob.save_list("driving-stress", matches)

    # Bob's analysis software downloads data directly from each store.
    window = DataQuery(
        channels=("ECG", "Respiration"),
        time_range=Interval(MONDAY + 8 * 3_600_000, MONDAY + 9 * 3_600_000),
    )
    released = bob.fetch("alice", window)
    drive_pieces = [r for r in released if "ECG" in r.channels()]
    print(f"from alice's 8-9am commute window, bob gets {len(released)} pieces, "
          f"{len(drive_pieces)} with raw ECG (stress rule withholds the rest)")


if __name__ == "__main__":
    main()
